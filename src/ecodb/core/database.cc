#include "ecodb/core/database.h"

#include "ecodb/sql/planner.h"

namespace ecodb {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  machine_ = std::make_unique<Machine>(options_.machine);
  machine_->SetLoadClass(options_.profile.load_class);
  buffer_pool_ = std::make_unique<BufferPool>(
      machine_.get(), options_.profile.buffer_pool_pages);
  if (options_.fault_injection.enabled()) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.fault_injection);
    buffer_pool_->set_fault_injector(fault_injector_.get());
  }
}

Status Database::LoadTpch(const tpch::DbGenOptions& options) {
  return tpch::Generate(options, &catalog_);
}

Status Database::ApplySettings(const SystemSettings& settings) {
  return machine_->ApplySettings(settings);
}

std::unique_ptr<ExecContext> Database::MakeExecContext() {
  return std::make_unique<ExecContext>(machine_.get(), &options_.profile,
                                       &catalog_, buffer_pool_.get());
}

Result<QueryResult> Database::ExecutePlanQuery(const PlanNode& plan) {
  auto ctx = MakeExecContext();
  // The governor lives on this frame for exactly one query; limits are
  // re-read per query so set_query_limits takes effect immediately.
  std::unique_ptr<QueryGovernor> governor;
  if (!options_.query_limits.None()) {
    governor = std::make_unique<QueryGovernor>(options_.query_limits,
                                               machine_->NowSeconds());
    ctx->set_governor(governor.get());
  }
  // Morsel workers only drive ungoverned, memory-resident batch
  // pipelines: row mode is the parity oracle, disk-backed scans serialize
  // on the buffer pool/clock mid-pipeline, and governed queries must trip
  // at machine-state checkpoints the worker trees never see. The clamp
  // covers the pipeline breakers too — their parallel build/accumulate
  // phases (partitioned hash build, partial aggregation, per-worker
  // sorts; exec/morsel.cc) run only under the same conditions, since the
  // breaker drivers mirror the sequential governor checkpoints in shape
  // but their worker contexts carry no governor or buffer pool.
  int workers = options_.exec_workers;
  if (options_.exec_mode != ExecMode::kBatch || options_.profile.disk_backed ||
      governor != nullptr) {
    workers = 1;
  }
  ctx->set_exec_workers(workers);
  EnergyLedger before = machine_->ledger();
  double t0 = machine_->NowSeconds();

  ECODB_ASSIGN_OR_RETURN(
      ResultSet set, ExecutePlanColumnar(plan, ctx.get(), options_.exec_mode));
  ctx->Flush();

  const EnergyLedger& after = machine_->ledger();
  QueryResult result;
  result.result = std::move(set);
  result.schema = plan.output_schema;
  result.seconds = machine_->NowSeconds() - t0;
  result.cpu_joules = after.cpu_j - before.cpu_j;
  result.disk_joules = after.DiskJ() - before.DiskJ();
  result.wall_joules = after.wall_j - before.wall_j;
  result.exec_stats = ctx->stats();
  return result;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanSql(sql));
  return ExecutePlanQuery(*plan);
}

Result<PlanNodePtr> Database::PlanSql(const std::string& sql) {
  return sql::PlanQuery(sql, catalog_);
}

void Database::ColdRestart() {
  if (options_.profile.disk_backed) buffer_pool_->EvictAll();
}

Status Database::WarmUp() {
  if (!options_.profile.disk_backed) return Status::OK();
  for (const std::string& name : catalog_.TableNames()) {
    const TableEntry* entry = catalog_.FindEntry(name);
    ECODB_RETURN_NOT_OK(buffer_pool_->FetchRange(
        entry->file.file_id(), 0, entry->file.num_pages(),
        AccessHint::kSequential));
  }
  // Warm-up I/O time/energy is not part of any measurement; callers reset
  // meters afterwards (ExperimentRunner does).
  return Status::OK();
}

}  // namespace ecodb

#include "ecodb/core/engine_profile.h"

namespace ecodb {

EngineProfile EngineProfile::Commercial() {
  EngineProfile p;
  p.name = "commercial";
  p.load_class = LoadClass::kBursty;
  p.disk_backed = true;
  // ~1 GB of pool on the paper's 2 GB box: plenty for SF <= 1 tables, so
  // warm runs are hits and the cold/warm contrast comes from EvictAll().
  p.buffer_pool_pages = 128 * 1024;  // 1 GiB of 8 KiB pages
  p.cold_random_page_period = 12;
  p.spill_fraction = 0.03;
  // A row-at-a-time iterator engine: ~1k cycles per tuple through a
  // Volcano pipeline plus cache-missing hash joins. Calibrated so ten
  // TPC-H Q5 queries at SF 1.0 take ~48.5 simulated seconds at stock
  // settings with ~25 W average CPU power (Figure 1, Section 3.5).
  p.scan_tuple_cycles = 240;
  p.scan_byte_cycles = 1.0;
  p.compare_cycles = 40;
  p.arith_cycles = 30;
  p.hash_build_cycles = 210;
  p.hash_probe_cycles = 160;
  p.agg_update_cycles = 200;
  p.sort_compare_cycles = 120;
  p.output_tuple_cycles = 900;
  p.output_byte_cycles = 3.0;
  p.scan_line_factor = 1.0;
  p.hash_op_lines = 6.0;
  p.output_tuple_lines = 6.0;
  p.underclock_cpi_penalty = 130.0;
  p.split_row_cycles = 4500;
  p.split_row_lines = 40;
  p.split_compare_cycles = 60;
  return p;
}

EngineProfile EngineProfile::MySqlMemory() {
  EngineProfile p;
  p.name = "mysql-memory";
  p.load_class = LoadClass::kSustained;
  p.disk_backed = false;
  p.buffer_pool_pages = 0;
  p.cold_random_page_period = 0;
  p.spill_fraction = 0.0;
  // The MEMORY engine is a lean heap-of-rows with no page latching; per
  // tuple costs are lower but still interpretive (MySQL 5.1 evaluates
  // expressions tree-walking: Item trees with handler field access, which
  // makes per-comparison cost a large fraction of per-tuple cost — the
  // property QED's merged-OR time curve in Figure 6 embodies).
  p.scan_tuple_cycles = 460;
  p.scan_byte_cycles = 1.0;
  p.compare_cycles = 95;
  p.arith_cycles = 40;
  p.hash_build_cycles = 300;
  p.hash_probe_cycles = 240;
  p.agg_update_cycles = 150;
  p.sort_compare_cycles = 100;
  // Result delivery: MySQL protocol row packets + the paper's Java/JDBC
  // client decode, calibrated against Figure 6's merged-time growth.
  p.output_tuple_cycles = 1200;
  p.output_byte_cycles = 2.5;
  p.scan_line_factor = 0.05;
  p.hash_op_lines = 0.5;
  p.output_tuple_lines = 62.0;
  p.underclock_cpi_penalty = 0.0;
  p.split_row_cycles = 1500;
  p.split_row_lines = 78;
  p.split_compare_cycles = 15;
  return p;
}

}  // namespace ecodb

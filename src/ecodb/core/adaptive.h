// Mid-flight adaptation (the paper's future-work idea: "dynamically adapt
// our query plan midflight to meet our response time and energy goals").
//
// The controller runs a workload query by query under an eco operating
// point, monitors projected completion against a deadline, and escalates
// to a fast operating point when it is falling behind (and can drop back
// when ahead).

#ifndef ECODB_CORE_ADAPTIVE_H_
#define ECODB_CORE_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "ecodb/core/database.h"
#include "ecodb/tpch/workloads.h"

namespace ecodb {

struct AdaptiveOptions {
  /// Workload must finish within this many simulated seconds.
  double deadline_s = 0;
  /// The energy-saving point to prefer.
  SystemSettings eco{0.05, VoltageDowngrade::kMedium};
  /// The fallback when behind schedule (stock by default).
  SystemSettings fast{};
  /// Projected finish must stay under deadline/headroom to stay eco.
  double headroom = 1.05;
};

struct AdaptiveReport {
  double total_s = 0;
  double cpu_j = 0;
  bool met_deadline = false;
  int switches = 0;  ///< number of operating-point changes
  std::vector<SystemSettings> per_query_settings;
  std::vector<double> query_completion_s;
};

class AdaptiveController {
 public:
  AdaptiveController(Database* db, const AdaptiveOptions& options)
      : db_(db), options_(options) {}

  /// Runs the workload with between-query adaptation.
  Result<AdaptiveReport> Run(const tpch::Workload& workload);

 private:
  Database* db_;
  AdaptiveOptions options_;
};

/// Exponentially weighted per-query service-time estimate, the adaptation
/// signal shared by mid-flight controllers: the workload scheduler feeds
/// it completed queries' simulated service times and asks for the
/// projected wait of a newly arrived query behind the current queue —
/// the "projected wait exceeds the class deadline" shed test.
class ServiceEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest observation in (0, 1].
  explicit ServiceEstimator(double alpha = 0.2) : alpha_(alpha) {}

  void Observe(double service_seconds) {
    if (count_ == 0) {
      ewma_s_ = service_seconds;
    } else {
      ewma_s_ = alpha_ * service_seconds + (1.0 - alpha_) * ewma_s_;
    }
    ++count_;
  }

  bool HasEstimate() const { return count_ > 0; }
  double EstimateSeconds() const { return ewma_s_; }
  uint64_t observations() const { return count_; }

  /// Expected wait before a query behind `queued_ahead` others starts,
  /// with `workers` queries draining concurrently. 0 until the first
  /// observation (no evidence, no shedding).
  double ProjectedWaitSeconds(size_t queued_ahead, int workers) const {
    if (count_ == 0 || workers < 1) return 0.0;
    return ewma_s_ * static_cast<double>(queued_ahead) /
           static_cast<double>(workers);
  }

 private:
  double alpha_;
  double ewma_s_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_CORE_ADAPTIVE_H_

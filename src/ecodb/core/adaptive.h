// Mid-flight adaptation (the paper's future-work idea: "dynamically adapt
// our query plan midflight to meet our response time and energy goals").
//
// The controller runs a workload query by query under an eco operating
// point, monitors projected completion against a deadline, and escalates
// to a fast operating point when it is falling behind (and can drop back
// when ahead).

#ifndef ECODB_CORE_ADAPTIVE_H_
#define ECODB_CORE_ADAPTIVE_H_

#include <vector>

#include "ecodb/core/database.h"
#include "ecodb/tpch/workloads.h"

namespace ecodb {

struct AdaptiveOptions {
  /// Workload must finish within this many simulated seconds.
  double deadline_s = 0;
  /// The energy-saving point to prefer.
  SystemSettings eco{0.05, VoltageDowngrade::kMedium};
  /// The fallback when behind schedule (stock by default).
  SystemSettings fast{};
  /// Projected finish must stay under deadline/headroom to stay eco.
  double headroom = 1.05;
};

struct AdaptiveReport {
  double total_s = 0;
  double cpu_j = 0;
  bool met_deadline = false;
  int switches = 0;  ///< number of operating-point changes
  std::vector<SystemSettings> per_query_settings;
  std::vector<double> query_completion_s;
};

class AdaptiveController {
 public:
  AdaptiveController(Database* db, const AdaptiveOptions& options)
      : db_(db), options_(options) {}

  /// Runs the workload with between-query adaptation.
  Result<AdaptiveReport> Run(const tpch::Workload& workload);

 private:
  Database* db_;
  AdaptiveOptions options_;
};

}  // namespace ecodb

#endif  // ECODB_CORE_ADAPTIVE_H_

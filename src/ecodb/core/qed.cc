#include "ecodb/core/qed.h"

#include <algorithm>

#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

bool RowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].Compare(b[i][j]) != 0) return false;
    }
  }
  return true;
}

}  // namespace

Result<QedBatchReport> QedScheduler::RunComparison(
    const tpch::Workload& workload) {
  int n = options_.batch_size;
  if (n < 1 || static_cast<size_t>(n) > workload.queries.size()) {
    return Status::InvalidArgument(
        StrFormat("batch size %d exceeds workload size %zu", n,
                  workload.queries.size()));
  }
  Machine* machine = db_->machine();
  QedBatchReport report;
  report.batch_size = n;

  // --- Sequential baseline: queries issued back to back. ---
  machine->ResetMeters();
  double t0 = machine->NowSeconds();
  std::vector<std::vector<Row>> seq_results;
  for (int i = 0; i < n; ++i) {
    ECODB_ASSIGN_OR_RETURN(QueryResult r,
                           db_->ExecutePlanQuery(*workload.queries[i]));
    report.seq_response_s.push_back(machine->NowSeconds() - t0);
    seq_results.push_back(r.TakeRows());
  }
  report.seq_total_s = machine->NowSeconds() - t0;
  report.seq_cpu_j = machine->ledger().cpu_j;
  double sum = 0;
  for (double t : report.seq_response_s) sum += t;
  report.seq_avg_response_s = sum / n;

  // --- QED: merge, run once, split. Queue build-up time not counted. ---
  std::vector<const PlanNode*> members;
  for (int i = 0; i < n; ++i) members.push_back(workload.queries[i].get());
  ECODB_ASSIGN_OR_RETURN(MergedSelection merged,
                         MergeSelections(members, options_.hashed_in_list));

  machine->ResetMeters();
  t0 = machine->NowSeconds();
  auto ctx = db_->MakeExecContext();
  ECODB_ASSIGN_OR_RETURN(std::vector<Row> merged_rows,
                         ExecutePlan(*merged.plan, ctx.get(),
                                     db_->options().exec_mode));
  std::vector<std::vector<Row>> split =
      SplitMergedResult(merged, merged_rows, ctx.get());
  report.qed_total_s = machine->NowSeconds() - t0;
  report.qed_cpu_j = machine->ledger().cpu_j;
  report.qed_avg_response_s = report.qed_total_s;

  // --- Correctness: split results must equal sequential results. ---
  report.results_match = true;
  for (int i = 0; i < n; ++i) {
    if (!RowsEqual(split[static_cast<size_t>(i)], seq_results[static_cast<size_t>(i)])) {
      report.results_match = false;
      break;
    }
  }

  // --- Ratios per the paper's Figure 6 axes. ---
  if (report.seq_cpu_j > 0) {
    report.energy_ratio = report.qed_cpu_j / report.seq_cpu_j;
  }
  if (report.seq_avg_response_s > 0) {
    report.response_ratio =
        report.qed_avg_response_s / report.seq_avg_response_s;
  }
  report.edp_ratio = report.energy_ratio * report.response_ratio;

  if (!report.seq_response_s.empty()) {
    report.first_query_degradation =
        report.qed_total_s / report.seq_response_s.front();
    report.last_query_degradation =
        report.qed_total_s / report.seq_response_s.back();
  }
  return report;
}

Status QedScheduler::Submit(PlanNodePtr plan) {
  queue_.push_back(std::move(plan));
  return Status::OK();
}

Result<MergedSelection> QedScheduler::MergeQueued() {
  if (queue_.empty()) {
    return Status::InvalidArgument("QED queue is empty");
  }
  std::vector<const PlanNode*> members;
  members.reserve(queue_.size());
  for (const PlanNodePtr& p : queue_) members.push_back(p.get());
  Result<MergedSelection> merged =
      MergeSelections(members, options_.hashed_in_list);
  queue_.clear();
  return merged;
}

Result<QedScheduler::FlushResult> QedScheduler::Flush() {
  if (queue_.empty()) {
    return Status::InvalidArgument("QED queue is empty");
  }
  std::vector<const PlanNode*> members;
  members.reserve(queue_.size());
  for (const PlanNodePtr& p : queue_) members.push_back(p.get());
  ECODB_ASSIGN_OR_RETURN(MergedSelection merged,
                         MergeSelections(members, options_.hashed_in_list));

  Machine* machine = db_->machine();
  EnergyLedger before = machine->ledger();
  double t0 = machine->NowSeconds();
  auto ctx = db_->MakeExecContext();
  ECODB_ASSIGN_OR_RETURN(std::vector<Row> merged_rows,
                         ExecutePlan(*merged.plan, ctx.get(),
                                     db_->options().exec_mode));

  FlushResult out;
  out.per_query_rows = SplitMergedResult(merged, merged_rows, ctx.get());
  out.total_s = machine->NowSeconds() - t0;
  out.cpu_j = machine->ledger().cpu_j - before.cpu_j;
  queue_.clear();
  return out;
}

QedAnalyticalModel QedAnalyticalModel::Fit(double single_query_s, int n1,
                                           double t1, int n2, double t2) {
  QedAnalyticalModel m;
  m.single_query_s = single_query_s;
  if (n1 != n2) {
    m.merged_slope_s = (t2 - t1) / static_cast<double>(n2 - n1);
    m.merged_base_s = t1 - m.merged_slope_s * n1;
  } else {
    m.merged_base_s = t1;
  }
  return m;
}

}  // namespace ecodb

// ecoDB — umbrella public header.
//
// Reproduction of Lang & Patel, "Towards Eco-friendly Database Management
// Systems" (CIDR 2009): a DBMS that treats energy as a first-class
// performance metric, with the paper's two energy/performance trade-off
// mechanisms (PVC and QED) on top of a calibrated full-machine energy
// simulator and a relational query engine.

#ifndef ECODB_ECODB_H_
#define ECODB_ECODB_H_

#include "ecodb/core/adaptive.h"
#include "ecodb/core/database.h"
#include "ecodb/core/engine_profile.h"
#include "ecodb/core/experiment.h"
#include "ecodb/core/policy.h"
#include "ecodb/core/pvc.h"
#include "ecodb/core/qed.h"
#include "ecodb/core/scheduler.h"
#include "ecodb/optimizer/cost_model.h"
#include "ecodb/optimizer/mqo.h"
#include "ecodb/sim/machine.h"
#include "ecodb/sql/planner.h"
#include "ecodb/tpch/dbgen.h"
#include "ecodb/tpch/queries.h"
#include "ecodb/tpch/workloads.h"
#include "ecodb/util/strings.h"
#include "ecodb/util/table_printer.h"
#include "ecodb/util/units.h"

#endif  // ECODB_ECODB_H_

#include "ecodb/tpch/workloads.h"

#include <numeric>

#include "ecodb/tpch/dbgen.h"
#include "ecodb/tpch/queries.h"
#include "ecodb/util/rng.h"
#include "ecodb/util/strings.h"

namespace ecodb::tpch {

Result<Workload> MakeQ5Workload(const Catalog& catalog) {
  Workload w;
  w.name = "tpch-q5-x10";
  for (const char* region : {"ASIA", "AMERICA"}) {
    for (int year = 1993; year <= 1997; ++year) {
      Q5Params p;
      p.region = region;
      p.date_lo = StrFormat("%d-01-01", year);
      p.date_hi = StrFormat("%d-01-01", year + 1);
      ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan, BuildQ5Plan(catalog, p));
      w.queries.push_back(std::move(plan));
    }
  }
  return w;
}

Result<Workload> MakeSelectionWorkload(const Catalog& catalog, int n,
                                       uint64_t seed) {
  if (n < 1 || n > kQuantityValues) {
    return Status::InvalidArgument(
        StrFormat("selection workload size %d out of [1, %lld]", n,
                  static_cast<long long>(kQuantityValues)));
  }
  // Choose n distinct values from 1..50, shuffled deterministically.
  std::vector<int64_t> values(kQuantityValues);
  std::iota(values.begin(), values.end(), 1);
  Rng rng(seed);
  rng.Shuffle(&values);
  values.resize(static_cast<size_t>(n));

  Workload w;
  w.name = StrFormat("selection-x%d", n);
  for (int64_t v : values) {
    ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan, BuildSelectionQuery(catalog, v));
    w.queries.push_back(std::move(plan));
    w.selection_values.push_back(v);
    w.merge_keys.push_back(v);
  }
  return w;
}

Result<Workload> MakeSchedulerMixWorkload(const Catalog& catalog, int n,
                                          uint64_t seed,
                                          double selection_fraction) {
  if (n < 1) {
    return Status::InvalidArgument(
        StrFormat("scheduler mix size %d must be >= 1", n));
  }
  if (selection_fraction < 0.0 || selection_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("selection fraction %g outside [0, 1]", selection_fraction));
  }
  Rng rng(seed);
  Workload w;
  w.name = StrFormat("scheduler-mix-x%d", n);
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(selection_fraction)) {
      int64_t v = rng.UniformInt(1, kQuantityValues);
      ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             BuildSelectionQuery(catalog, v));
      w.queries.push_back(std::move(plan));
      w.selection_values.push_back(v);
      w.merge_keys.push_back(v);
      continue;
    }
    // Heavies, cheap-biased so a mix stays drainable at high arrival
    // rates: Q6 twice as likely as each join query.
    PlanNodePtr plan;
    switch (rng.NextBelow(5)) {
      case 0:
      case 1: {
        ECODB_ASSIGN_OR_RETURN(plan, BuildQ6Plan(catalog, Q6Params{}));
        break;
      }
      case 2: {
        ECODB_ASSIGN_OR_RETURN(plan, BuildQ1Plan(catalog, "1998-09-02"));
        break;
      }
      case 3: {
        ECODB_ASSIGN_OR_RETURN(plan, BuildQ3Plan(catalog, Q3Params{}));
        break;
      }
      default: {
        ECODB_ASSIGN_OR_RETURN(plan, BuildQ5Plan(catalog, Q5Params{}));
        break;
      }
    }
    w.queries.push_back(std::move(plan));
    w.selection_values.push_back(0);
    w.merge_keys.push_back(kNotMergeable);
  }
  return w;
}

Result<Workload> MakeMixedWorkload(const Catalog& catalog) {
  Workload w;
  w.name = "mixed-q1-q3-q5-q6";
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q1,
                         BuildQ1Plan(catalog, "1998-09-02"));
  w.queries.push_back(std::move(q1));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q3, BuildQ3Plan(catalog, Q3Params{}));
  w.queries.push_back(std::move(q3));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q5, BuildQ5Plan(catalog, Q5Params{}));
  w.queries.push_back(std::move(q5));
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q6, BuildQ6Plan(catalog, Q6Params{}));
  w.queries.push_back(std::move(q6));
  return w;
}

}  // namespace ecodb::tpch

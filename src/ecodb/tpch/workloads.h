// Workload generators matching the paper's experimental setup.

#ifndef ECODB_TPCH_WORKLOADS_H_
#define ECODB_TPCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "ecodb/exec/plan.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/result.h"

namespace ecodb::tpch {

/// A named sequence of query plans, run back-to-back (zero think time).
struct Workload {
  std::string name;
  std::vector<PlanNodePtr> queries;
  /// For selection workloads: the predicate value of each query (used by
  /// QED's result splitter and the analytical model).
  std::vector<int64_t> selection_values;
};

/// The paper's PVC workload (Section 3.3): ten TPC-H Q5 instances with
/// regions ASIA and AMERICA crossed with the five one-year date windows
/// 1993..1997 — equal work, non-overlapping predicates.
Result<Workload> MakeQ5Workload(const Catalog& catalog);

/// The paper's QED workload (Section 4): `n` single-table selections on
/// lineitem, each on a distinct l_quantity value (2 % selectivity each, no
/// predicate overlap; requires n <= 50).
Result<Workload> MakeSelectionWorkload(const Catalog& catalog, int n,
                                       uint64_t seed);

/// Extra mixed workload used by examples/ablations: Q1 + Q3 + Q6 + Q5.
Result<Workload> MakeMixedWorkload(const Catalog& catalog);

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_WORKLOADS_H_

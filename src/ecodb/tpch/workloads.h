// Workload generators matching the paper's experimental setup.

#ifndef ECODB_TPCH_WORKLOADS_H_
#define ECODB_TPCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "ecodb/exec/plan.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/result.h"

namespace ecodb::tpch {

/// A named sequence of query plans, run back-to-back (zero think time).
struct Workload {
  std::string name;
  std::vector<PlanNodePtr> queries;
  /// For selection workloads: the predicate value of each query (used by
  /// QED's result splitter and the analytical model).
  std::vector<int64_t> selection_values;
  /// QED-mergeability tag per query, parallel to `queries` (empty: no
  /// query is mergeable). Entry >= 0 marks a Project(Filter(Scan))
  /// selection and carries its predicate literal; the workload scheduler
  /// only co-merges queries with *distinct* keys, because the merged
  /// result splitter assigns each row to the first member testing its
  /// value. -1 = not mergeable.
  std::vector<int64_t> merge_keys;
};

inline constexpr int64_t kNotMergeable = -1;

/// The paper's PVC workload (Section 3.3): ten TPC-H Q5 instances with
/// regions ASIA and AMERICA crossed with the five one-year date windows
/// 1993..1997 — equal work, non-overlapping predicates.
Result<Workload> MakeQ5Workload(const Catalog& catalog);

/// The paper's QED workload (Section 4): `n` single-table selections on
/// lineitem, each on a distinct l_quantity value (2 % selectivity each, no
/// predicate overlap; requires n <= 50).
Result<Workload> MakeSelectionWorkload(const Catalog& catalog, int n,
                                       uint64_t seed);

/// Extra mixed workload used by examples/ablations: Q1 + Q3 + Q6 + Q5.
Result<Workload> MakeMixedWorkload(const Catalog& catalog);

/// Sustained-traffic mix for the workload scheduler: `n` queries drawn
/// deterministically from (seed) — a `selection_fraction` share of QED-
/// mergeable l_quantity selections (values uniform in 1..50, merge_keys
/// set) interleaved with Q6/Q1/Q3/Q5 heavies for the rest. Unlike
/// MakeSelectionWorkload, selection values may repeat across the stream
/// (real traffic repeats queries); the scheduler's merge grouping keeps
/// duplicates out of any single QED batch.
Result<Workload> MakeSchedulerMixWorkload(const Catalog& catalog, int n,
                                          uint64_t seed,
                                          double selection_fraction = 0.7);

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_WORKLOADS_H_

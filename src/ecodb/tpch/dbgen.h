// TPC-H data generator (deterministic, scale-factor parameterized).
//
// Generates the eight TPC-H tables with the distributional properties the
// paper's workloads rely on: uniform keys, order dates spanning 1992-01-01
// .. 1998-08-02 (so one-year Q5 ranges are non-overlapping equal slices),
// and l_quantity uniform over the 50 integers 1..50 (so a single-value
// predicate has the 2 % selectivity QED's workload uses). Text fields are
// generated short to keep memory modest; schema shapes match TPC-H.

#ifndef ECODB_TPCH_DBGEN_H_
#define ECODB_TPCH_DBGEN_H_

#include <cstdint>
#include <string>

#include "ecodb/storage/catalog.h"
#include "ecodb/util/status.h"

namespace ecodb::tpch {

struct DbGenOptions {
  /// TPC-H scale factor. SF 1.0 ~ 6M lineitem rows. The paper uses SF 1.0
  /// (commercial), 0.125 (MySQL PVC) and 0.5 (QED); benches default lower
  /// and report scaled results.
  double scale_factor = 0.1;
  uint64_t seed = 19940101;
  /// Skip part/partsupp when not needed (they are not used by Q1/3/5/6).
  bool include_part_tables = false;
};

/// Row-count helpers for a scale factor (minimum 1).
uint64_t CustomerCount(double sf);
uint64_t OrderCount(double sf);
uint64_t SupplierCount(double sf);
uint64_t PartCount(double sf);

/// Date-range constants shared with the query builders.
extern const char* const kOrderDateLo;  // "1992-01-01"
extern const char* const kOrderDateHi;  // "1998-08-02" (exclusive)

/// The 25 TPC-H nations (name, region key) and 5 regions.
extern const char* const kRegionNames[5];
struct NationSpec {
  const char* name;
  int region_key;
};
extern const NationSpec kNations[25];

/// Number of distinct l_quantity values (1..kQuantityValues, uniform).
inline constexpr int64_t kQuantityValues = 50;

/// Generates all tables into the catalog. Fails with kAlreadyExists if
/// tables are already present.
Status Generate(const DbGenOptions& options, Catalog* catalog);

// Schemas (exported for tests and the binder).
Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema CustomerSchema();
Schema OrdersSchema();
Schema LineitemSchema();
Schema PartSchema();
Schema PartsuppSchema();

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_DBGEN_H_

#include "ecodb/tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "ecodb/util/rng.h"
#include "ecodb/util/strings.h"

namespace ecodb::tpch {

const char* const kOrderDateLo = "1992-01-01";
const char* const kOrderDateHi = "1998-08-02";

const char* const kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

const NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};

uint64_t CustomerCount(double sf) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(150000.0 * sf));
}
uint64_t OrderCount(double sf) { return CustomerCount(sf) * 10; }
uint64_t SupplierCount(double sf) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(10000.0 * sf));
}
uint64_t PartCount(double sf) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(200000.0 * sf));
}

Schema RegionSchema() {
  return Schema({Field("r_regionkey", ValueType::kInt64),
                 Field("r_name", ValueType::kString, 12),
                 Field("r_comment", ValueType::kString, 20)});
}

Schema NationSchema() {
  return Schema({Field("n_nationkey", ValueType::kInt64),
                 Field("n_name", ValueType::kString, 16),
                 Field("n_regionkey", ValueType::kInt64),
                 Field("n_comment", ValueType::kString, 20)});
}

Schema SupplierSchema() {
  return Schema({Field("s_suppkey", ValueType::kInt64),
                 Field("s_name", ValueType::kString, 18),
                 Field("s_address", ValueType::kString, 20),
                 Field("s_nationkey", ValueType::kInt64),
                 Field("s_phone", ValueType::kString, 15),
                 Field("s_acctbal", ValueType::kDouble),
                 Field("s_comment", ValueType::kString, 24)});
}

Schema CustomerSchema() {
  return Schema({Field("c_custkey", ValueType::kInt64),
                 Field("c_name", ValueType::kString, 18),
                 Field("c_address", ValueType::kString, 20),
                 Field("c_nationkey", ValueType::kInt64),
                 Field("c_phone", ValueType::kString, 15),
                 Field("c_acctbal", ValueType::kDouble),
                 Field("c_mktsegment", ValueType::kString, 10),
                 Field("c_comment", ValueType::kString, 24)});
}

Schema OrdersSchema() {
  return Schema({Field("o_orderkey", ValueType::kInt64),
                 Field("o_custkey", ValueType::kInt64),
                 Field("o_orderstatus", ValueType::kString, 1),
                 Field("o_totalprice", ValueType::kDouble),
                 Field("o_orderdate", ValueType::kDate),
                 Field("o_orderpriority", ValueType::kString, 10),
                 Field("o_clerk", ValueType::kString, 15),
                 Field("o_shippriority", ValueType::kInt64),
                 Field("o_comment", ValueType::kString, 24)});
}

Schema LineitemSchema() {
  return Schema({Field("l_orderkey", ValueType::kInt64),
                 Field("l_partkey", ValueType::kInt64),
                 Field("l_suppkey", ValueType::kInt64),
                 Field("l_linenumber", ValueType::kInt64),
                 Field("l_quantity", ValueType::kInt64),
                 Field("l_extendedprice", ValueType::kDouble),
                 Field("l_discount", ValueType::kDouble),
                 Field("l_tax", ValueType::kDouble),
                 Field("l_returnflag", ValueType::kString, 1),
                 Field("l_linestatus", ValueType::kString, 1),
                 Field("l_shipdate", ValueType::kDate),
                 Field("l_commitdate", ValueType::kDate),
                 Field("l_receiptdate", ValueType::kDate),
                 Field("l_shipinstruct", ValueType::kString, 12),
                 Field("l_shipmode", ValueType::kString, 7),
                 Field("l_comment", ValueType::kString, 16)});
}

Schema PartSchema() {
  return Schema({Field("p_partkey", ValueType::kInt64),
                 Field("p_name", ValueType::kString, 20),
                 Field("p_mfgr", ValueType::kString, 14),
                 Field("p_brand", ValueType::kString, 10),
                 Field("p_type", ValueType::kString, 16),
                 Field("p_size", ValueType::kInt64),
                 Field("p_container", ValueType::kString, 10),
                 Field("p_retailprice", ValueType::kDouble),
                 Field("p_comment", ValueType::kString, 14)});
}

Schema PartsuppSchema() {
  return Schema({Field("ps_partkey", ValueType::kInt64),
                 Field("ps_suppkey", ValueType::kInt64),
                 Field("ps_availqty", ValueType::kInt64),
                 Field("ps_supplycost", ValueType::kDouble),
                 Field("ps_comment", ValueType::kString, 20)});
}

namespace {

const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "MACHINERY", "HOUSEHOLD"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECI", "5-LOW"};
const char* const kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};
const char* const kShipInstruct[4] = {"DELIVER IN P", "COLLECT COD",
                                      "NONE", "TAKE BACK RE"};

/// Deterministic per-part retail price (TPC-H-like range 900..2100) so
/// lineitem prices don't require a part-table lookup.
double RetailPrice(int64_t partkey) {
  return 900.0 + static_cast<double>((partkey * 2654435761ULL) % 120001) / 100.0;
}

std::string Phone(Rng* rng, int64_t nationkey) {
  return StrFormat("%02d-%03d-%03d-%04d", static_cast<int>(10 + nationkey),
                   static_cast<int>(rng->UniformInt(100, 999)),
                   static_cast<int>(rng->UniformInt(100, 999)),
                   static_cast<int>(rng->UniformInt(1000, 9999)));
}

Status GenerateRegion(Catalog* catalog, Rng* rng) {
  ECODB_ASSIGN_OR_RETURN(Table * t,
                         catalog->CreateTable("region", RegionSchema()));
  for (int64_t i = 0; i < 5; ++i) {
    ECODB_RETURN_NOT_OK(t->AppendRow({Value::Int(i),
                                      Value::Str(kRegionNames[i]),
                                      Value::Str(rng->AlphaString(8, 16))}));
  }
  return catalog->FinalizeLoad("region");
}

Status GenerateNation(Catalog* catalog, Rng* rng) {
  ECODB_ASSIGN_OR_RETURN(Table * t,
                         catalog->CreateTable("nation", NationSchema()));
  for (int64_t i = 0; i < 25; ++i) {
    ECODB_RETURN_NOT_OK(
        t->AppendRow({Value::Int(i), Value::Str(kNations[i].name),
                      Value::Int(kNations[i].region_key),
                      Value::Str(rng->AlphaString(8, 16))}));
  }
  return catalog->FinalizeLoad("nation");
}

Status GenerateSupplier(Catalog* catalog, Rng* rng, uint64_t count) {
  ECODB_ASSIGN_OR_RETURN(Table * t,
                         catalog->CreateTable("supplier", SupplierSchema()));
  t->Reserve(count);
  for (uint64_t i = 1; i <= count; ++i) {
    int64_t nation = rng->UniformInt(0, 24);
    ECODB_RETURN_NOT_OK(t->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Str(StrFormat("Supplier#%09llu",
                              static_cast<unsigned long long>(i))),
         Value::Str(rng->AlphaString(10, 20)), Value::Int(nation),
         Value::Str(Phone(rng, nation)),
         Value::Dbl(rng->UniformDouble(-999.99, 9999.99)),
         Value::Str(rng->AlphaString(10, 24))}));
  }
  return catalog->FinalizeLoad("supplier");
}

Status GenerateCustomer(Catalog* catalog, Rng* rng, uint64_t count) {
  ECODB_ASSIGN_OR_RETURN(Table * t,
                         catalog->CreateTable("customer", CustomerSchema()));
  t->Reserve(count);
  for (uint64_t i = 1; i <= count; ++i) {
    int64_t nation = rng->UniformInt(0, 24);
    ECODB_RETURN_NOT_OK(t->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Str(StrFormat("Customer#%09llu",
                              static_cast<unsigned long long>(i))),
         Value::Str(rng->AlphaString(10, 20)), Value::Int(nation),
         Value::Str(Phone(rng, nation)),
         Value::Dbl(rng->UniformDouble(-999.99, 9999.99)),
         Value::Str(kSegments[rng->NextBelow(5)]),
         Value::Str(rng->AlphaString(10, 24))}));
  }
  return catalog->FinalizeLoad("customer");
}

Status GenerateOrdersAndLineitem(Catalog* catalog, Rng* rng,
                                 uint64_t order_count, uint64_t customer_count,
                                 uint64_t supplier_count,
                                 uint64_t part_count) {
  ECODB_ASSIGN_OR_RETURN(Table * orders,
                         catalog->CreateTable("orders", OrdersSchema()));
  ECODB_ASSIGN_OR_RETURN(Table * lineitem,
                         catalog->CreateTable("lineitem", LineitemSchema()));
  orders->Reserve(order_count);
  lineitem->Reserve(order_count * 4);

  const int32_t date_lo = ParseDateToDays(kOrderDateLo);
  const int32_t date_hi = ParseDateToDays(kOrderDateHi);

  for (uint64_t o = 1; o <= order_count; ++o) {
    int64_t custkey =
        rng->UniformInt(1, static_cast<int64_t>(customer_count));
    int32_t orderdate =
        static_cast<int32_t>(rng->UniformInt(date_lo, date_hi - 1));
    int64_t nlines = rng->UniformInt(1, 7);

    double totalprice = 0.0;
    // Lineitems first to compute o_totalprice.
    for (int64_t l = 1; l <= nlines; ++l) {
      int64_t partkey = rng->UniformInt(1, static_cast<int64_t>(part_count));
      int64_t suppkey =
          rng->UniformInt(1, static_cast<int64_t>(supplier_count));
      int64_t quantity = rng->UniformInt(1, kQuantityValues);
      double price = RetailPrice(partkey) * static_cast<double>(quantity);
      double discount = rng->UniformInt(0, 10) / 100.0;
      double tax = rng->UniformInt(0, 8) / 100.0;
      int32_t shipdate =
          orderdate + static_cast<int32_t>(rng->UniformInt(1, 121));
      int32_t commitdate =
          orderdate + static_cast<int32_t>(rng->UniformInt(30, 90));
      int32_t receiptdate =
          shipdate + static_cast<int32_t>(rng->UniformInt(1, 30));
      totalprice += price * (1.0 - discount) * (1.0 + tax);
      ECODB_RETURN_NOT_OK(lineitem->AppendRow(
          {Value::Int(static_cast<int64_t>(o)), Value::Int(partkey),
           Value::Int(suppkey), Value::Int(l), Value::Int(quantity),
           Value::Dbl(price), Value::Dbl(discount), Value::Dbl(tax),
           Value::Str(rng->Bernoulli(0.25) ? "R" : (rng->Bernoulli(0.5) ? "A" : "N")),
           Value::Str(shipdate > date_hi - 200 ? "O" : "F"),
           Value::Date(shipdate), Value::Date(commitdate),
           Value::Date(receiptdate),
           Value::Str(kShipInstruct[rng->NextBelow(4)]),
           Value::Str(kShipModes[rng->NextBelow(7)]),
           Value::Str(rng->AlphaString(8, 16))}));
    }
    ECODB_RETURN_NOT_OK(orders->AppendRow(
        {Value::Int(static_cast<int64_t>(o)), Value::Int(custkey),
         Value::Str(rng->Bernoulli(0.5) ? "F" : "O"), Value::Dbl(totalprice),
         Value::Date(orderdate), Value::Str(kPriorities[rng->NextBelow(5)]),
         Value::Str(StrFormat("Clerk#%08d",
                              static_cast<int>(rng->UniformInt(1, 1000)))),
         Value::Int(0), Value::Str(rng->AlphaString(10, 24))}));
  }
  ECODB_RETURN_NOT_OK(catalog->FinalizeLoad("orders"));
  return catalog->FinalizeLoad("lineitem");
}

Status GeneratePartAndPartsupp(Catalog* catalog, Rng* rng,
                               uint64_t part_count, uint64_t supplier_count) {
  ECODB_ASSIGN_OR_RETURN(Table * part,
                         catalog->CreateTable("part", PartSchema()));
  ECODB_ASSIGN_OR_RETURN(Table * partsupp,
                         catalog->CreateTable("partsupp", PartsuppSchema()));
  part->Reserve(part_count);
  partsupp->Reserve(part_count * 4);
  static const char* kContainers[5] = {"SM CASE", "LG BOX", "MED BAG",
                                       "JUMBO JAR", "WRAP PKG"};
  static const char* kTypes[6] = {"STANDARD",  "SMALL",  "MEDIUM",
                                  "LARGE",     "ECONOMY", "PROMO"};
  for (uint64_t p = 1; p <= part_count; ++p) {
    ECODB_RETURN_NOT_OK(part->AppendRow(
        {Value::Int(static_cast<int64_t>(p)),
         Value::Str(rng->AlphaString(12, 20)),
         Value::Str(StrFormat("Manufacturer#%d",
                              static_cast<int>(rng->UniformInt(1, 5)))),
         Value::Str(StrFormat("Brand#%d%d",
                              static_cast<int>(rng->UniformInt(1, 5)),
                              static_cast<int>(rng->UniformInt(1, 5)))),
         Value::Str(kTypes[rng->NextBelow(6)]),
         Value::Int(rng->UniformInt(1, 50)),
         Value::Str(kContainers[rng->NextBelow(5)]),
         Value::Dbl(RetailPrice(static_cast<int64_t>(p))),
         Value::Str(rng->AlphaString(8, 14))}));
    for (int s = 0; s < 4; ++s) {
      int64_t suppkey =
          1 + static_cast<int64_t>((p + static_cast<uint64_t>(s) *
                                            (supplier_count / 4 + 1)) %
                                   supplier_count);
      ECODB_RETURN_NOT_OK(partsupp->AppendRow(
          {Value::Int(static_cast<int64_t>(p)), Value::Int(suppkey),
           Value::Int(rng->UniformInt(1, 9999)),
           Value::Dbl(rng->UniformDouble(1.0, 1000.0)),
           Value::Str(rng->AlphaString(10, 20))}));
    }
  }
  ECODB_RETURN_NOT_OK(catalog->FinalizeLoad("part"));
  return catalog->FinalizeLoad("partsupp");
}

}  // namespace

Status Generate(const DbGenOptions& options, Catalog* catalog) {
  if (options.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Rng rng(options.seed);
  uint64_t customers = CustomerCount(options.scale_factor);
  uint64_t orders = OrderCount(options.scale_factor);
  uint64_t suppliers = SupplierCount(options.scale_factor);
  uint64_t parts = PartCount(options.scale_factor);

  ECODB_RETURN_NOT_OK(GenerateRegion(catalog, &rng));
  ECODB_RETURN_NOT_OK(GenerateNation(catalog, &rng));
  ECODB_RETURN_NOT_OK(GenerateSupplier(catalog, &rng, suppliers));
  ECODB_RETURN_NOT_OK(GenerateCustomer(catalog, &rng, customers));
  ECODB_RETURN_NOT_OK(GenerateOrdersAndLineitem(catalog, &rng, orders,
                                                customers, suppliers, parts));
  if (options.include_part_tables) {
    ECODB_RETURN_NOT_OK(
        GeneratePartAndPartsupp(catalog, &rng, parts, suppliers));
  }
  return Status::OK();
}

}  // namespace ecodb::tpch

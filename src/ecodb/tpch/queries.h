// TPC-H query plan builders (hand-built physical plans, as a DBMS
// optimizer would produce) and matching SQL texts for the SQL front end.
//
// Q5 is the paper's PVC workload query ("a six table join and a group by
// clause on one attribute"); Q1/Q3/Q6 round out the example workloads.
// SelectionQuery is QED's 2 %-selectivity single-table select.

#ifndef ECODB_TPCH_QUERIES_H_
#define ECODB_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "ecodb/exec/plan.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/result.h"

namespace ecodb::tpch {

/// TPC-H Q5 parameters: region name and a one-year date window.
struct Q5Params {
  std::string region = "ASIA";
  std::string date_lo = "1994-01-01";
  std::string date_hi = "1995-01-01";
};

/// Local-supplier volume query (six-way join, group by n_name).
Result<PlanNodePtr> BuildQ5Plan(const Catalog& catalog, const Q5Params& p);
std::string Q5Sql(const Q5Params& p);

/// Q1: pricing summary report over lineitem (shipdate <= cutoff).
Result<PlanNodePtr> BuildQ1Plan(const Catalog& catalog,
                                const std::string& ship_cutoff);
std::string Q1Sql(const std::string& ship_cutoff);

/// Q3: shipping priority (customer x orders x lineitem, top 10).
struct Q3Params {
  std::string segment = "BUILDING";
  std::string date = "1995-03-15";
};
Result<PlanNodePtr> BuildQ3Plan(const Catalog& catalog, const Q3Params& p);
std::string Q3Sql(const Q3Params& p);

/// Q6: forecasting revenue change (selection + aggregate over lineitem).
struct Q6Params {
  std::string date_lo = "1994-01-01";
  std::string date_hi = "1995-01-01";
  double discount = 0.06;
  int64_t quantity = 24;
};
Result<PlanNodePtr> BuildQ6Plan(const Catalog& catalog, const Q6Params& p);
std::string Q6Sql(const Q6Params& p);

/// QED's workload query: SELECT l_orderkey, l_partkey, l_quantity,
/// l_extendedprice FROM lineitem WHERE l_quantity = `value` — one of the
/// 50 uniform values, i.e. 2 % selectivity (paper Section 4).
Result<PlanNodePtr> BuildSelectionQuery(const Catalog& catalog,
                                        int64_t quantity_value);
std::string SelectionSql(int64_t quantity_value);

/// A named benchmark plan, for harnesses that sweep "every query".
struct NamedQuery {
  std::string name;
  PlanNodePtr plan;
};

/// All benchmark query plans (Q1, Q3, Q5, Q6, selection) with default
/// parameters — the corpus the batch-vs-row parity suite and the engine
/// micro-bench iterate over.
Result<std::vector<NamedQuery>> BuildAllBenchmarkQueries(
    const Catalog& catalog);

}  // namespace ecodb::tpch

#endif  // ECODB_TPCH_QUERIES_H_

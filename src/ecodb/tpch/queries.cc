#include "ecodb/tpch/queries.h"

#include <cmath>

#include "ecodb/util/strings.h"

namespace ecodb::tpch {

namespace {

/// Column reference into a plan node's output schema, by name.
Result<ExprPtr> ColRef(const PlanNode& node, const std::string& name) {
  int idx = node.output_schema.FindField(name);
  if (idx < 0) {
    return Status::Internal(
        StrFormat("column %s not found in %s", name.c_str(),
                  node.output_schema.ToString().c_str()));
  }
  return Col(idx, node.output_schema.field(idx).type, name);
}

Result<int> ColIdx(const PlanNode& node, const std::string& name) {
  int idx = node.output_schema.FindField(name);
  if (idx < 0) {
    return Status::Internal(StrFormat("column %s not found", name.c_str()));
  }
  return idx;
}

}  // namespace

Result<PlanNodePtr> BuildQ5Plan(const Catalog& catalog, const Q5Params& p) {
  // region(r_name = ?) |x| nation |x| customer |x| orders(date range)
  //   |x| lineitem |x| supplier (on suppkey AND s_nationkey=c_nationkey)
  // -> group by n_name, sum(l_extendedprice * (1 - l_discount)) -> sort.
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr region, MakeScan(catalog, "region"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr r_name, ColRef(*region, "r_name"));
  PlanNodePtr filtered_region =
      MakeFilter(std::move(region), Eq(r_name, LitStr(p.region)));

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr nation, MakeScan(catalog, "nation"));
  ECODB_ASSIGN_OR_RETURN(int rk_build, ColIdx(*filtered_region, "r_regionkey"));
  ECODB_ASSIGN_OR_RETURN(int rk_probe, ColIdx(*nation, "n_regionkey"));
  PlanNodePtr j_rn = MakeHashJoin(std::move(filtered_region),
                                  std::move(nation), {rk_build}, {rk_probe});

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr customer, MakeScan(catalog, "customer"));
  ECODB_ASSIGN_OR_RETURN(int nk_build, ColIdx(*j_rn, "n_nationkey"));
  ECODB_ASSIGN_OR_RETURN(int nk_probe, ColIdx(*customer, "c_nationkey"));
  PlanNodePtr j_rnc = MakeHashJoin(std::move(j_rn), std::move(customer),
                                   {nk_build}, {nk_probe});

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr orders, MakeScan(catalog, "orders"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr o_orderdate, ColRef(*orders, "o_orderdate"));
  PlanNodePtr filtered_orders = MakeFilter(
      std::move(orders),
      And({Cmp(CompareOp::kGe, o_orderdate, LitDate(p.date_lo)),
           Cmp(CompareOp::kLt, o_orderdate, LitDate(p.date_hi))}));

  ECODB_ASSIGN_OR_RETURN(int ck_build, ColIdx(*j_rnc, "c_custkey"));
  ECODB_ASSIGN_OR_RETURN(int ck_probe, ColIdx(*filtered_orders, "o_custkey"));
  PlanNodePtr j_rnco = MakeHashJoin(std::move(j_rnc),
                                    std::move(filtered_orders), {ck_build},
                                    {ck_probe});

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  ECODB_ASSIGN_OR_RETURN(int ok_build, ColIdx(*j_rnco, "o_orderkey"));
  ECODB_ASSIGN_OR_RETURN(int ok_probe, ColIdx(*lineitem, "l_orderkey"));
  PlanNodePtr j_rncol = MakeHashJoin(std::move(j_rnco), std::move(lineitem),
                                     {ok_build}, {ok_probe});

  // Final join with supplier on (l_suppkey = s_suppkey AND
  // c_nationkey = s_nationkey): supplier is the build side.
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr supplier, MakeScan(catalog, "supplier"));
  ECODB_ASSIGN_OR_RETURN(int sk_build, ColIdx(*supplier, "s_suppkey"));
  ECODB_ASSIGN_OR_RETURN(int sn_build, ColIdx(*supplier, "s_nationkey"));
  ECODB_ASSIGN_OR_RETURN(int lk_probe, ColIdx(*j_rncol, "l_suppkey"));
  ECODB_ASSIGN_OR_RETURN(int cn_probe, ColIdx(*j_rncol, "n_nationkey"));
  PlanNodePtr joined =
      MakeHashJoin(std::move(supplier), std::move(j_rncol),
                   {sk_build, sn_build}, {lk_probe, cn_probe});

  ECODB_ASSIGN_OR_RETURN(ExprPtr n_name, ColRef(*joined, "n_name"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr price, ColRef(*joined, "l_extendedprice"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr discount, ColRef(*joined, "l_discount"));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = Arith(ArithOp::kMul, price,
                      Arith(ArithOp::kSub, LitDbl(1.0), discount));
  revenue.name = "revenue";
  PlanNodePtr agg = MakeAggregate(std::move(joined), {n_name}, {revenue});

  ECODB_ASSIGN_OR_RETURN(ExprPtr rev_col, ColRef(*agg, "revenue"));
  PlanNodePtr sorted =
      MakeSort(std::move(agg), {SortKey{rev_col, /*ascending=*/false}});

  ECODB_ASSIGN_OR_RETURN(ExprPtr name_out, ColRef(*sorted, "group_0"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr rev_out, ColRef(*sorted, "revenue"));
  return MakeProject(std::move(sorted), {name_out, rev_out},
                     {"n_name", "revenue"});
}

std::string Q5Sql(const Q5Params& p) {
  return StrFormat(
      "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM customer, orders, lineitem, supplier, nation, region "
      "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
      "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
      "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
      "AND r_name = '%s' AND o_orderdate >= DATE '%s' "
      "AND o_orderdate < DATE '%s' "
      "GROUP BY n_name ORDER BY revenue DESC",
      p.region.c_str(), p.date_lo.c_str(), p.date_hi.c_str());
}

Result<PlanNodePtr> BuildQ1Plan(const Catalog& catalog,
                                const std::string& ship_cutoff) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr shipdate, ColRef(*lineitem, "l_shipdate"));
  PlanNodePtr filtered =
      MakeFilter(std::move(lineitem),
                 Cmp(CompareOp::kLe, shipdate, LitDate(ship_cutoff)));

  ECODB_ASSIGN_OR_RETURN(ExprPtr flag, ColRef(*filtered, "l_returnflag"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr status, ColRef(*filtered, "l_linestatus"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr qty, ColRef(*filtered, "l_quantity"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr price, ColRef(*filtered, "l_extendedprice"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr disc, ColRef(*filtered, "l_discount"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr tax, ColRef(*filtered, "l_tax"));

  ExprPtr disc_price =
      Arith(ArithOp::kMul, price, Arith(ArithOp::kSub, LitDbl(1.0), disc));
  ExprPtr charge = Arith(ArithOp::kMul, disc_price,
                         Arith(ArithOp::kAdd, LitDbl(1.0), tax));

  auto agg = [](AggSpec::Kind k, ExprPtr arg, const char* name) {
    AggSpec s;
    s.kind = k;
    s.arg = std::move(arg);
    s.name = name;
    return s;
  };
  std::vector<AggSpec> aggs;
  aggs.push_back(agg(AggSpec::Kind::kSum, qty, "sum_qty"));
  aggs.push_back(agg(AggSpec::Kind::kSum, price, "sum_base_price"));
  aggs.push_back(agg(AggSpec::Kind::kSum, disc_price, "sum_disc_price"));
  aggs.push_back(agg(AggSpec::Kind::kSum, charge, "sum_charge"));
  aggs.push_back(agg(AggSpec::Kind::kAvg, qty, "avg_qty"));
  aggs.push_back(agg(AggSpec::Kind::kAvg, price, "avg_price"));
  aggs.push_back(agg(AggSpec::Kind::kAvg, disc, "avg_disc"));
  aggs.push_back(agg(AggSpec::Kind::kCount, nullptr, "count_order"));

  PlanNodePtr aggregated =
      MakeAggregate(std::move(filtered), {flag, status}, std::move(aggs));

  ECODB_ASSIGN_OR_RETURN(ExprPtr g0, ColRef(*aggregated, "group_0"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr g1, ColRef(*aggregated, "group_1"));
  return MakeSort(std::move(aggregated),
                  {SortKey{g0, true}, SortKey{g1, true}});
}

std::string Q1Sql(const std::string& ship_cutoff) {
  return StrFormat(
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
      "SUM(l_extendedprice) AS sum_base_price, "
      "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
      "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
      "AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, "
      "AVG(l_discount) AS avg_disc, COUNT(*) AS count_order "
      "FROM lineitem WHERE l_shipdate <= DATE '%s' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus",
      ship_cutoff.c_str());
}

Result<PlanNodePtr> BuildQ3Plan(const Catalog& catalog, const Q3Params& p) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr customer, MakeScan(catalog, "customer"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr seg, ColRef(*customer, "c_mktsegment"));
  PlanNodePtr filtered_cust =
      MakeFilter(std::move(customer), Eq(seg, LitStr(p.segment)));

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr orders, MakeScan(catalog, "orders"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr odate, ColRef(*orders, "o_orderdate"));
  PlanNodePtr filtered_orders = MakeFilter(
      std::move(orders), Cmp(CompareOp::kLt, odate, LitDate(p.date)));

  ECODB_ASSIGN_OR_RETURN(int ck_build, ColIdx(*filtered_cust, "c_custkey"));
  ECODB_ASSIGN_OR_RETURN(int ck_probe, ColIdx(*filtered_orders, "o_custkey"));
  PlanNodePtr j_co =
      MakeHashJoin(std::move(filtered_cust), std::move(filtered_orders),
                   {ck_build}, {ck_probe});

  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr sdate, ColRef(*lineitem, "l_shipdate"));
  PlanNodePtr filtered_li = MakeFilter(
      std::move(lineitem), Cmp(CompareOp::kGt, sdate, LitDate(p.date)));

  ECODB_ASSIGN_OR_RETURN(int ok_build, ColIdx(*j_co, "o_orderkey"));
  ECODB_ASSIGN_OR_RETURN(int ok_probe, ColIdx(*filtered_li, "l_orderkey"));
  PlanNodePtr joined = MakeHashJoin(std::move(j_co), std::move(filtered_li),
                                    {ok_build}, {ok_probe});

  ECODB_ASSIGN_OR_RETURN(ExprPtr okey, ColRef(*joined, "o_orderkey"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr odate2, ColRef(*joined, "o_orderdate"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr oprio, ColRef(*joined, "o_shippriority"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr price, ColRef(*joined, "l_extendedprice"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr disc, ColRef(*joined, "l_discount"));
  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = Arith(ArithOp::kMul, price,
                      Arith(ArithOp::kSub, LitDbl(1.0), disc));
  revenue.name = "revenue";
  PlanNodePtr agg =
      MakeAggregate(std::move(joined), {okey, odate2, oprio}, {revenue});

  ECODB_ASSIGN_OR_RETURN(ExprPtr rev, ColRef(*agg, "revenue"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr gdate, ColRef(*agg, "group_1"));
  PlanNodePtr sorted = MakeSort(
      std::move(agg), {SortKey{rev, false}, SortKey{gdate, true}});
  return MakeLimit(std::move(sorted), 10);
}

std::string Q3Sql(const Q3Params& p) {
  return StrFormat(
      "SELECT o_orderkey, o_orderdate, o_shippriority, "
      "SUM(l_extendedprice * (1 - l_discount)) AS revenue "
      "FROM customer, orders, lineitem "
      "WHERE c_mktsegment = '%s' AND c_custkey = o_custkey "
      "AND l_orderkey = o_orderkey AND o_orderdate < DATE '%s' "
      "AND l_shipdate > DATE '%s' "
      "GROUP BY o_orderkey, o_orderdate, o_shippriority "
      "ORDER BY revenue DESC, o_orderdate LIMIT 10",
      p.segment.c_str(), p.date.c_str(), p.date.c_str());
}

Result<PlanNodePtr> BuildQ6Plan(const Catalog& catalog, const Q6Params& p) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr sdate, ColRef(*lineitem, "l_shipdate"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr disc, ColRef(*lineitem, "l_discount"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr qty, ColRef(*lineitem, "l_quantity"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr price, ColRef(*lineitem, "l_extendedprice"));

  // Snap the +-0.01 window to exact cent values; l_discount is generated
  // as k/100.0 and naive double arithmetic (0.06 + 0.01) lands just below
  // 0.07, silently excluding the boundary discount.
  auto cents = [](double v) { return std::round(v * 100.0) / 100.0; };
  PlanNodePtr filtered = MakeFilter(
      std::move(lineitem),
      And({Cmp(CompareOp::kGe, sdate, LitDate(p.date_lo)),
           Cmp(CompareOp::kLt, sdate, LitDate(p.date_hi)),
           Between(disc, LitDbl(cents(p.discount - 0.01)),
                   LitDbl(cents(p.discount + 0.01))),
           Cmp(CompareOp::kLt, qty, LitInt(p.quantity))}));

  AggSpec revenue;
  revenue.kind = AggSpec::Kind::kSum;
  revenue.arg = Arith(ArithOp::kMul, price, disc);
  revenue.name = "revenue";
  return MakeAggregate(std::move(filtered), {}, {revenue});
}

std::string Q6Sql(const Q6Params& p) {
  return StrFormat(
      "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s' "
      "AND l_discount BETWEEN %.2f AND %.2f AND l_quantity < %lld",
      p.date_lo.c_str(), p.date_hi.c_str(), p.discount - 0.01,
      p.discount + 0.01, static_cast<long long>(p.quantity));
}

Result<PlanNodePtr> BuildSelectionQuery(const Catalog& catalog,
                                        int64_t quantity_value) {
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr lineitem, MakeScan(catalog, "lineitem"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr qty, ColRef(*lineitem, "l_quantity"));
  PlanNodePtr filtered =
      MakeFilter(std::move(lineitem), Eq(qty, LitInt(quantity_value)));

  ECODB_ASSIGN_OR_RETURN(ExprPtr okey, ColRef(*filtered, "l_orderkey"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr pkey, ColRef(*filtered, "l_partkey"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr qty2, ColRef(*filtered, "l_quantity"));
  ECODB_ASSIGN_OR_RETURN(ExprPtr price, ColRef(*filtered, "l_extendedprice"));
  return MakeProject(
      std::move(filtered), {okey, pkey, qty2, price},
      {"l_orderkey", "l_partkey", "l_quantity", "l_extendedprice"});
}

std::string SelectionSql(int64_t quantity_value) {
  return StrFormat(
      "SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice "
      "FROM lineitem WHERE l_quantity = %lld",
      static_cast<long long>(quantity_value));
}

Result<std::vector<NamedQuery>> BuildAllBenchmarkQueries(
    const Catalog& catalog) {
  std::vector<NamedQuery> out;
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q1, BuildQ1Plan(catalog, "1998-09-02"));
  out.push_back(NamedQuery{"q1", std::move(q1)});
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q3, BuildQ3Plan(catalog, Q3Params{}));
  out.push_back(NamedQuery{"q3", std::move(q3)});
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q5, BuildQ5Plan(catalog, Q5Params{}));
  out.push_back(NamedQuery{"q5", std::move(q5)});
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr q6, BuildQ6Plan(catalog, Q6Params{}));
  out.push_back(NamedQuery{"q6", std::move(q6)});
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr sel, BuildSelectionQuery(catalog, 24));
  out.push_back(NamedQuery{"selection", std::move(sel)});
  return out;
}

}  // namespace ecodb::tpch

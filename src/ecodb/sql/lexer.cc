#include "ecodb/sql/lexer.h"

#include <cctype>

#include "ecodb/util/strings.h"

namespace ecodb::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && upper == kw;
}

bool Token::IsSymbol(const char* s) const {
  return kind == TokenKind::kSymbol && text == s;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto peek = [&](size_t k) { return i + k < n ? input[i + k] : '\0'; };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      t.text = input.substr(start, i - start);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.dbl_value = std::stod(t.text);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::stoll(t.text);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      t.kind = TokenKind::kIdent;
      t.text = input.substr(start, i - start);
      t.upper = ToUpper(t.text);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            s += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s += input[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", t.pos));
      }
      t.kind = TokenKind::kString;
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Symbols, longest first.
    static const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (c == sym[0] && peek(1) == sym[1]) {
        t.kind = TokenKind::kSymbol;
        t.text = sym;
        i += 2;
        out.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "(),.*/+-=<>;";
    if (kOneChar.find(c) != std::string::npos) {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      ++i;
      out.push_back(std::move(t));
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace ecodb::sql

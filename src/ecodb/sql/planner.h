// SQL planner: parsed statement -> physical plan.
//
// Join ordering is a greedy heuristic in the System-R spirit: start from
// the table with the smallest filtered cardinality estimate, repeatedly
// attach the connected table with the smallest estimate via a hash join
// (smaller side builds), fall back to a nested-loop cross join for
// disconnected tables. Single-table predicates are pushed below joins.

#ifndef ECODB_SQL_PLANNER_H_
#define ECODB_SQL_PLANNER_H_

#include <string>

#include "ecodb/exec/plan.h"
#include "ecodb/storage/catalog.h"
#include "ecodb/util/result.h"

namespace ecodb::sql {

/// Parses, binds and plans a SELECT statement.
Result<PlanNodePtr> PlanQuery(const std::string& sql_text,
                              const Catalog& catalog);

}  // namespace ecodb::sql

#endif  // ECODB_SQL_PLANNER_H_

// Recursive-descent SQL parser for the ecoDB subset:
//   SELECT [*|expr [AS alias], ...]
//   FROM t1 [, t2 ...] [[INNER] JOIN t ON cond ...]
//   [WHERE cond] [GROUP BY expr, ...]
//   [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
// Expressions: AND/OR/NOT, comparisons, +,-,*,/, BETWEEN, IN (...),
// DATE 'yyyy-mm-dd' literals, SUM/COUNT/AVG/MIN/MAX calls.

#ifndef ECODB_SQL_PARSER_H_
#define ECODB_SQL_PARSER_H_

#include <string>

#include "ecodb/sql/ast.h"
#include "ecodb/util/result.h"

namespace ecodb::sql {

Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace ecodb::sql

#endif  // ECODB_SQL_PARSER_H_

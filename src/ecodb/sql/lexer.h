// SQL lexer.

#ifndef ECODB_SQL_LEXER_H_
#define ECODB_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ecodb/util/result.h"

namespace ecodb::sql {

enum class TokenKind {
  kIdent,    ///< bare identifier or keyword (case-insensitive)
  kInt,
  kDouble,
  kString,   ///< 'quoted literal' (quotes stripped, '' unescaped)
  kSymbol,   ///< punctuation / operator, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       ///< identifier/symbol text (identifiers upper-cased
                          ///< in `upper`, original in text)
  std::string upper;      ///< upper-case form for keyword matching
  int64_t int_value = 0;
  double dbl_value = 0.0;
  size_t pos = 0;         ///< byte offset in the input (for errors)

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* s) const;
};

/// Tokenizes SQL text. Symbols recognized: ( ) , . * / + - = <> != < <= > >= ;
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace ecodb::sql

#endif  // ECODB_SQL_LEXER_H_

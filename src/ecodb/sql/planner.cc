#include "ecodb/sql/planner.h"

#include <algorithm>
#include <map>

#include "ecodb/sql/binder.h"
#include "ecodb/sql/parser.h"
#include "ecodb/util/strings.h"

namespace ecodb::sql {

namespace {

/// One base table participating in the FROM clause.
struct TableRef {
  std::string name;
  const Table* table = nullptr;
  std::vector<const AstExpr*> local_predicates;
  double est_rows = 0;
};

/// An equi-join edge col(ta) = col(tb).
struct JoinEdge {
  int table_a = 0;
  std::string col_a;
  int table_b = 0;
  std::string col_b;
  bool used = false;
};

/// Flattens nested ANDs into conjuncts.
void CollectConjuncts(const AstExpr& e, std::vector<const AstExpr*>* out) {
  if (e.kind == AstKind::kLogical && e.log_op == LogicalOp::kAnd) {
    for (const AstExprPtr& a : e.args) CollectConjuncts(*a, out);
    return;
  }
  out->push_back(&e);
}

void CollectColumnNames(const AstExpr& e, std::vector<std::string>* out) {
  if (e.kind == AstKind::kColumn) out->push_back(e.name);
  for (const AstExprPtr& a : e.args) CollectColumnNames(*a, out);
}

/// Crude pre-statistics selectivity for ordering heuristics only.
double HeuristicSelectivity(const AstExpr& pred) {
  switch (pred.kind) {
    case AstKind::kCompare:
      return pred.cmp_op == CompareOp::kEq ? 0.05 : 0.3;
    case AstKind::kBetween:
      return 0.15;
    case AstKind::kInList:
      return std::min(1.0, 0.05 * static_cast<double>(pred.args.size() - 1));
    case AstKind::kLogical: {
      double s = pred.log_op == LogicalOp::kAnd ? 1.0 : 0.0;
      for (const AstExprPtr& a : pred.args) {
        double as = HeuristicSelectivity(*a);
        if (pred.log_op == LogicalOp::kAnd) {
          s *= as;
        } else {
          s = s + as - s * as;
        }
      }
      return s;
    }
    default:
      return 0.5;
  }
}

class Planner {
 public:
  Planner(const SelectStatement& stmt, const Catalog& catalog)
      : stmt_(stmt), catalog_(catalog) {}

  Result<PlanNodePtr> Plan();

 private:
  /// (table index, column index) -> position in the current plan output.
  struct LayoutEntry {
    int table = 0;
    int column = 0;
  };

  Result<PlanNodePtr> BuildBaseInput(int t);
  Result<PlanNodePtr> BuildJoinTree();
  int FindLayout(int table, const std::string& col) const;
  Schema LayoutSchema() const;
  Result<PlanNodePtr> ApplyResidual(PlanNodePtr plan);
  Result<PlanNodePtr> ApplyAggregation(PlanNodePtr plan);
  Result<PlanNodePtr> ApplyOrderLimit(PlanNodePtr plan);

  const SelectStatement& stmt_;
  const Catalog& catalog_;

  std::vector<TableRef> tables_;
  std::vector<JoinEdge> edges_;
  std::vector<const AstExpr*> residual_;
  std::vector<LayoutEntry> layout_;
  std::vector<bool> joined_;

  /// Set when aggregation applied: maps select items to output columns.
  bool aggregated_ = false;
  /// Text of each select item (post-bind key for ORDER BY matching).
  std::vector<std::string> item_keys_;
};

int Planner::FindLayout(int table, const std::string& col) const {
  for (size_t i = 0; i < layout_.size(); ++i) {
    const LayoutEntry& e = layout_[i];
    if (e.table == table &&
        EqualsIgnoreCase(
            tables_[static_cast<size_t>(e.table)].table->schema()
                .field(e.column).name,
            col)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Schema Planner::LayoutSchema() const {
  std::vector<Field> fields;
  fields.reserve(layout_.size());
  for (const LayoutEntry& e : layout_) {
    fields.push_back(tables_[static_cast<size_t>(e.table)].table->schema()
                         .field(e.column));
  }
  return Schema(std::move(fields));
}

Result<PlanNodePtr> Planner::BuildBaseInput(int t) {
  TableRef& ref = tables_[static_cast<size_t>(t)];
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan, MakeScan(catalog_, ref.name));
  if (!ref.local_predicates.empty()) {
    std::vector<ExprPtr> bound;
    for (const AstExpr* p : ref.local_predicates) {
      ECODB_ASSIGN_OR_RETURN(ExprPtr e,
                             BindScalar(*p, ref.table->schema()));
      bound.push_back(std::move(e));
    }
    plan = MakeFilter(std::move(plan), And(std::move(bound)));
  }
  return plan;
}

Result<PlanNodePtr> Planner::BuildJoinTree() {
  size_t n = tables_.size();
  joined_.assign(n, false);

  // Start from the smallest filtered table.
  int start = 0;
  for (size_t t = 1; t < n; ++t) {
    if (tables_[t].est_rows < tables_[static_cast<size_t>(start)].est_rows) {
      start = static_cast<int>(t);
    }
  }
  ECODB_ASSIGN_OR_RETURN(PlanNodePtr plan, BuildBaseInput(start));
  joined_[static_cast<size_t>(start)] = true;
  double current_est = tables_[static_cast<size_t>(start)].est_rows;
  layout_.clear();
  for (int c = 0; c < tables_[static_cast<size_t>(start)].table->schema()
                          .num_fields(); ++c) {
    layout_.push_back(LayoutEntry{start, c});
  }

  for (size_t round = 1; round < n; ++round) {
    // Pick the connected un-joined table with the smallest estimate.
    int next = -1;
    for (size_t t = 0; t < n; ++t) {
      if (joined_[t]) continue;
      bool connected = false;
      for (const JoinEdge& e : edges_) {
        int other = -1;
        if (e.table_a == static_cast<int>(t) &&
            joined_[static_cast<size_t>(e.table_b)]) {
          other = e.table_b;
        }
        if (e.table_b == static_cast<int>(t) &&
            joined_[static_cast<size_t>(e.table_a)]) {
          other = e.table_a;
        }
        if (other >= 0) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      if (next < 0 || tables_[t].est_rows <
                          tables_[static_cast<size_t>(next)].est_rows) {
        next = static_cast<int>(t);
      }
    }
    bool cross = false;
    if (next < 0) {
      // Disconnected: cross join the smallest remaining table.
      for (size_t t = 0; t < n; ++t) {
        if (joined_[t]) continue;
        if (next < 0 || tables_[t].est_rows <
                            tables_[static_cast<size_t>(next)].est_rows) {
          next = static_cast<int>(t);
        }
      }
      cross = true;
    }

    ECODB_ASSIGN_OR_RETURN(PlanNodePtr rhs, BuildBaseInput(next));
    const Schema& rhs_schema =
        tables_[static_cast<size_t>(next)].table->schema();

    if (cross) {
      PlanNodePtr joined = MakeNestedLoopJoin(std::move(plan),
                                              std::move(rhs), nullptr);
      for (int c = 0; c < rhs_schema.num_fields(); ++c) {
        layout_.push_back(LayoutEntry{next, c});
      }
      plan = std::move(joined);
      current_est *= tables_[static_cast<size_t>(next)].est_rows;
      joined_[static_cast<size_t>(next)] = true;
      continue;
    }

    // Gather all usable equi-join keys between the current set and next.
    std::vector<int> plan_keys;   // positions in current layout
    std::vector<int> rhs_keys;    // positions in rhs schema
    for (JoinEdge& e : edges_) {
      if (e.used) continue;
      std::string col_new, col_old;
      int t_old = -1;
      if (e.table_a == next && joined_[static_cast<size_t>(e.table_b)]) {
        col_new = e.col_a;
        t_old = e.table_b;
        col_old = e.col_b;
      } else if (e.table_b == next &&
                 joined_[static_cast<size_t>(e.table_a)]) {
        col_new = e.col_b;
        t_old = e.table_a;
        col_old = e.col_a;
      } else {
        continue;
      }
      int plan_pos = FindLayout(t_old, col_old);
      int rhs_pos = rhs_schema.FindField(col_new);
      if (plan_pos < 0 || rhs_pos < 0) continue;
      plan_keys.push_back(plan_pos);
      rhs_keys.push_back(rhs_pos);
      e.used = true;
    }
    if (plan_keys.empty()) {
      return Status::Internal("join ordering found no usable key");
    }

    double rhs_est = tables_[static_cast<size_t>(next)].est_rows;
    // Hash join: smaller estimated side builds. Layout = build ++ probe.
    if (current_est <= rhs_est) {
      PlanNodePtr joined = MakeHashJoin(std::move(plan), std::move(rhs),
                                        plan_keys, rhs_keys);
      for (int c = 0; c < rhs_schema.num_fields(); ++c) {
        layout_.push_back(LayoutEntry{next, c});
      }
      plan = std::move(joined);
    } else {
      PlanNodePtr joined = MakeHashJoin(std::move(rhs), std::move(plan),
                                        rhs_keys, plan_keys);
      std::vector<LayoutEntry> new_layout;
      for (int c = 0; c < rhs_schema.num_fields(); ++c) {
        new_layout.push_back(LayoutEntry{next, c});
      }
      new_layout.insert(new_layout.end(), layout_.begin(), layout_.end());
      layout_ = std::move(new_layout);
      plan = std::move(joined);
    }
    joined_[static_cast<size_t>(next)] = true;
    current_est = std::max(current_est, rhs_est) * 0.2;  // coarse FK guess
  }
  return plan;
}

Result<PlanNodePtr> Planner::ApplyResidual(PlanNodePtr plan) {
  if (residual_.empty()) return plan;
  Schema schema = LayoutSchema();
  std::vector<ExprPtr> bound;
  for (const AstExpr* p : residual_) {
    ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*p, schema));
    bound.push_back(std::move(e));
  }
  return MakeFilter(std::move(plan), And(std::move(bound)));
}

Result<PlanNodePtr> Planner::ApplyAggregation(PlanNodePtr plan) {
  bool has_agg = !stmt_.group_by.empty();
  for (const SelectItem& item : stmt_.items) {
    if (ContainsAggregate(*item.expr)) has_agg = true;
  }
  Schema input_schema = LayoutSchema();

  if (!has_agg) {
    if (stmt_.select_star) {
      for (int i = 0; i < input_schema.num_fields(); ++i) {
        item_keys_.push_back(input_schema.field(i).name);
      }
      return plan;
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt_.items) {
      ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*item.expr, input_schema));
      names.push_back(!item.alias.empty() ? item.alias
                                          : item.expr->ToString());
      item_keys_.push_back(item.expr->ToString());
      exprs.push_back(std::move(e));
    }
    return MakeProject(std::move(plan), std::move(exprs), std::move(names));
  }

  if (stmt_.select_star) {
    return Status::ParseError("SELECT * cannot be combined with aggregates");
  }
  aggregated_ = true;

  // Bind group-by expressions against the join output.
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_texts;
  for (const AstExprPtr& g : stmt_.group_by) {
    ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*g, input_schema));
    group_texts.push_back(g->ToString());
    group_exprs.push_back(std::move(e));
  }

  // Each select item must be a group-by expression or an aggregate call.
  struct OutputSlot {
    bool is_group = false;
    int group_index = 0;
    int agg_index = 0;
    std::string name;
  };
  std::vector<OutputSlot> slots;
  std::vector<AggSpec> aggs;
  for (const SelectItem& item : stmt_.items) {
    OutputSlot slot;
    std::string text = item.expr->ToString();
    slot.name = !item.alias.empty() ? item.alias : text;
    item_keys_.push_back(text);
    auto git = std::find(group_texts.begin(), group_texts.end(), text);
    if (git != group_texts.end()) {
      slot.is_group = true;
      slot.group_index = static_cast<int>(git - group_texts.begin());
      slots.push_back(slot);
      continue;
    }
    if (item.expr->kind != AstKind::kFuncCall ||
        !IsAggregateName(item.expr->name)) {
      return Status::ParseError(StrFormat(
          "select item '%s' is neither a GROUP BY column nor an aggregate",
          text.c_str()));
    }
    AggSpec spec;
    if (item.expr->name == "SUM") {
      spec.kind = AggSpec::Kind::kSum;
    } else if (item.expr->name == "COUNT") {
      spec.kind = AggSpec::Kind::kCount;
    } else if (item.expr->name == "AVG") {
      spec.kind = AggSpec::Kind::kAvg;
    } else if (item.expr->name == "MIN") {
      spec.kind = AggSpec::Kind::kMin;
    } else {
      spec.kind = AggSpec::Kind::kMax;
    }
    if (item.expr->args.size() != 1) {
      return Status::ParseError("aggregates take exactly one argument");
    }
    if (item.expr->args[0]->kind == AstKind::kStar) {
      if (spec.kind != AggSpec::Kind::kCount) {
        return Status::ParseError("'*' argument is only valid for COUNT");
      }
      spec.arg = nullptr;
    } else {
      ECODB_ASSIGN_OR_RETURN(spec.arg,
                             BindScalar(*item.expr->args[0], input_schema));
    }
    spec.name = slot.name;
    slot.agg_index = static_cast<int>(aggs.size());
    aggs.push_back(std::move(spec));
    slots.push_back(slot);
  }

  size_t n_groups = group_exprs.size();
  PlanNodePtr agg_plan = MakeAggregate(std::move(plan),
                                       std::move(group_exprs), aggs);

  // Final projection in select-item order with aliases.
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  const Schema& agg_schema = agg_plan->output_schema;
  for (const OutputSlot& slot : slots) {
    int idx = slot.is_group ? slot.group_index
                            : static_cast<int>(n_groups) + slot.agg_index;
    exprs.push_back(Col(idx, agg_schema.field(idx).type, slot.name));
    names.push_back(slot.name);
  }
  return MakeProject(std::move(agg_plan), std::move(exprs),
                     std::move(names));
}

Result<PlanNodePtr> Planner::ApplyOrderLimit(PlanNodePtr plan) {
  if (!stmt_.order_by.empty()) {
    const Schema& schema = plan->output_schema;
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt_.order_by) {
      SortKey key;
      key.ascending = item.ascending;
      // Resolve: output column/alias name, select-item text, or scalar
      // expression over the output schema.
      std::string text = item.expr->ToString();
      int idx = -1;
      if (item.expr->kind == AstKind::kColumn) {
        idx = schema.FindField(item.expr->name);
      }
      if (idx < 0) {
        for (size_t i = 0; i < item_keys_.size(); ++i) {
          if (item_keys_[i] == text) {
            idx = static_cast<int>(i);
            break;
          }
        }
      }
      if (idx >= 0) {
        key.expr = Col(idx, schema.field(idx).type, schema.field(idx).name);
      } else {
        ECODB_ASSIGN_OR_RETURN(key.expr, BindScalar(*item.expr, schema));
      }
      keys.push_back(std::move(key));
    }
    plan = MakeSort(std::move(plan), std::move(keys));
  }
  if (stmt_.limit >= 0) {
    plan = MakeLimit(std::move(plan), stmt_.limit);
  }
  return plan;
}

Result<PlanNodePtr> Planner::Plan() {
  if (stmt_.from_tables.empty()) {
    return Status::ParseError("FROM clause is required");
  }
  // Resolve tables.
  for (const std::string& name : stmt_.from_tables) {
    const Table* t = catalog_.FindTable(name);
    if (t == nullptr) {
      return Status::NotFound(StrFormat("unknown table '%s'", name.c_str()));
    }
    TableRef ref;
    ref.name = name;
    ref.table = t;
    ref.est_rows = static_cast<double>(t->num_rows());
    tables_.push_back(std::move(ref));
  }

  // Map every column name to its table (TPC-H names are unique).
  auto table_of_column = [&](const std::string& col) -> int {
    for (size_t t = 0; t < tables_.size(); ++t) {
      if (tables_[t].table->schema().FindField(col) >= 0) {
        return static_cast<int>(t);
      }
    }
    return -1;
  };

  // Classify WHERE conjuncts.
  std::vector<const AstExpr*> conjuncts;
  if (stmt_.where) CollectConjuncts(*stmt_.where, &conjuncts);
  for (const AstExpr* c : conjuncts) {
    // Equi-join?
    if (c->kind == AstKind::kCompare && c->cmp_op == CompareOp::kEq &&
        c->args[0]->kind == AstKind::kColumn &&
        c->args[1]->kind == AstKind::kColumn) {
      int ta = table_of_column(c->args[0]->name);
      int tb = table_of_column(c->args[1]->name);
      if (ta < 0 || tb < 0) {
        return Status::ParseError(
            StrFormat("unknown column in join condition '%s'",
                      c->ToString().c_str()));
      }
      if (ta != tb) {
        edges_.push_back(
            JoinEdge{ta, c->args[0]->name, tb, c->args[1]->name});
        continue;
      }
    }
    // Single table?
    std::vector<std::string> cols;
    CollectColumnNames(*c, &cols);
    int home = -2;
    for (const std::string& col : cols) {
      int t = table_of_column(col);
      if (t < 0) {
        return Status::ParseError(
            StrFormat("unknown column '%s'", col.c_str()));
      }
      if (home == -2) {
        home = t;
      } else if (home != t) {
        home = -1;
      }
    }
    if (home >= 0) {
      tables_[static_cast<size_t>(home)].local_predicates.push_back(c);
    } else {
      residual_.push_back(c);
    }
  }

  // Apply local selectivities to ordering estimates.
  for (TableRef& ref : tables_) {
    for (const AstExpr* p : ref.local_predicates) {
      ref.est_rows *= HeuristicSelectivity(*p);
    }
    ref.est_rows = std::max(1.0, ref.est_rows);
  }

  PlanNodePtr plan;
  if (tables_.size() == 1) {
    ECODB_ASSIGN_OR_RETURN(plan, BuildBaseInput(0));
    layout_.clear();
    for (int c = 0; c < tables_[0].table->schema().num_fields(); ++c) {
      layout_.push_back(LayoutEntry{0, c});
    }
  } else {
    ECODB_ASSIGN_OR_RETURN(plan, BuildJoinTree());
    // Any unused join edges become post-join filters.
    Schema schema = LayoutSchema();
    std::vector<ExprPtr> leftover;
    for (const JoinEdge& e : edges_) {
      if (e.used) continue;
      int pa = FindLayout(e.table_a, e.col_a);
      int pb = FindLayout(e.table_b, e.col_b);
      if (pa < 0 || pb < 0) {
        return Status::Internal("dangling join edge");
      }
      leftover.push_back(Eq(Col(pa, schema.field(pa).type, e.col_a),
                            Col(pb, schema.field(pb).type, e.col_b)));
    }
    if (!leftover.empty()) {
      plan = MakeFilter(std::move(plan), And(std::move(leftover)));
    }
  }

  ECODB_ASSIGN_OR_RETURN(plan, ApplyResidual(std::move(plan)));
  ECODB_ASSIGN_OR_RETURN(plan, ApplyAggregation(std::move(plan)));
  return ApplyOrderLimit(std::move(plan));
}

}  // namespace

Result<PlanNodePtr> PlanQuery(const std::string& sql_text,
                              const Catalog& catalog) {
  ECODB_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql_text));
  Planner planner(stmt, catalog);
  return planner.Plan();
}

}  // namespace ecodb::sql

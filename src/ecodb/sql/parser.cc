#include "ecodb/sql/parser.h"

#include "ecodb/sql/lexer.h"
#include "ecodb/util/strings.h"

namespace ecodb::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse();

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t k) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AcceptKeyword(const char* kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Cur().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s at offset %zu", kw,
                                          Cur().pos));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError(
          StrFormat("expected '%s' at offset %zu", s, Cur().pos));
    }
    return Status::OK();
  }

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParseComparison();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool IsReservedTail(const Token& t) {
  // Keywords that terminate an expression / select-item list.
  static const char* kStop[] = {"FROM",  "WHERE", "GROUP", "ORDER", "LIMIT",
                                "AND",   "OR",    "AS",    "ASC",   "DESC",
                                "BY",    "JOIN",  "ON",    "INNER", "NOT",
                                "BETWEEN", "IN"};
  if (t.kind != TokenKind::kIdent) return false;
  for (const char* kw : kStop) {
    if (t.upper == kw) return true;
  }
  return false;
}

Result<AstExprPtr> Parser::ParseOr() {
  ECODB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
  if (!Cur().IsKeyword("OR")) return left;
  auto node = MakeAst(AstKind::kLogical);
  node->log_op = LogicalOp::kOr;
  node->args.push_back(std::move(left));
  while (AcceptKeyword("OR")) {
    ECODB_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
    node->args.push_back(std::move(rhs));
  }
  return node;
}

Result<AstExprPtr> Parser::ParseAnd() {
  ECODB_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
  if (!Cur().IsKeyword("AND")) return left;
  auto node = MakeAst(AstKind::kLogical);
  node->log_op = LogicalOp::kAnd;
  node->args.push_back(std::move(left));
  while (AcceptKeyword("AND")) {
    ECODB_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
    node->args.push_back(std::move(rhs));
  }
  return node;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (AcceptKeyword("NOT")) {
    ECODB_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
    auto node = MakeAst(AstKind::kNot);
    node->args.push_back(std::move(operand));
    return node;
  }
  return ParseComparison();
}

Result<AstExprPtr> Parser::ParseComparison() {
  ECODB_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());

  if (AcceptKeyword("BETWEEN")) {
    ECODB_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
    ECODB_RETURN_NOT_OK(ExpectKeyword("AND"));
    ECODB_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
    auto node = MakeAst(AstKind::kBetween);
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(lo));
    node->args.push_back(std::move(hi));
    return node;
  }
  bool negated = false;
  if (Cur().IsKeyword("NOT") && Ahead(1).IsKeyword("IN")) {
    Advance();
    negated = true;
  }
  if (AcceptKeyword("IN")) {
    ECODB_RETURN_NOT_OK(ExpectSymbol("("));
    auto node = MakeAst(AstKind::kInList);
    node->args.push_back(std::move(left));
    for (;;) {
      ECODB_ASSIGN_OR_RETURN(AstExprPtr v, ParseAdditive());
      node->args.push_back(std::move(v));
      if (!AcceptSymbol(",")) break;
    }
    ECODB_RETURN_NOT_OK(ExpectSymbol(")"));
    if (negated) {
      auto wrapped = MakeAst(AstKind::kNot);
      wrapped->args.push_back(std::move(node));
      return wrapped;
    }
    return node;
  }

  struct OpMap {
    const char* sym;
    CompareOp op;
  };
  static const OpMap kOps[] = {{"=", CompareOp::kEq},  {"<>", CompareOp::kNe},
                               {"!=", CompareOp::kNe}, {"<=", CompareOp::kLe},
                               {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
                               {">", CompareOp::kGt}};
  for (const OpMap& m : kOps) {
    if (Cur().IsSymbol(m.sym)) {
      Advance();
      ECODB_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
      auto node = MakeAst(AstKind::kCompare);
      node->cmp_op = m.op;
      node->args.push_back(std::move(left));
      node->args.push_back(std::move(right));
      return node;
    }
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAdditive() {
  ECODB_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
  for (;;) {
    ArithOp op;
    if (Cur().IsSymbol("+")) {
      op = ArithOp::kAdd;
    } else if (Cur().IsSymbol("-")) {
      op = ArithOp::kSub;
    } else {
      return left;
    }
    Advance();
    ECODB_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
    auto node = MakeAst(AstKind::kArith);
    node->arith_op = op;
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    left = std::move(node);
  }
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  ECODB_ASSIGN_OR_RETURN(AstExprPtr left, ParsePrimary());
  for (;;) {
    ArithOp op;
    if (Cur().IsSymbol("*")) {
      op = ArithOp::kMul;
    } else if (Cur().IsSymbol("/")) {
      op = ArithOp::kDiv;
    } else {
      return left;
    }
    Advance();
    ECODB_ASSIGN_OR_RETURN(AstExprPtr right, ParsePrimary());
    auto node = MakeAst(AstKind::kArith);
    node->arith_op = op;
    node->args.push_back(std::move(left));
    node->args.push_back(std::move(right));
    left = std::move(node);
  }
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Cur();
  switch (t.kind) {
    case TokenKind::kInt: {
      auto node = MakeAst(AstKind::kIntLit);
      node->int_value = t.int_value;
      Advance();
      return node;
    }
    case TokenKind::kDouble: {
      auto node = MakeAst(AstKind::kDoubleLit);
      node->dbl_value = t.dbl_value;
      Advance();
      return node;
    }
    case TokenKind::kString: {
      auto node = MakeAst(AstKind::kStringLit);
      node->str_value = t.text;
      Advance();
      return node;
    }
    case TokenKind::kSymbol:
      if (t.text == "(") {
        Advance();
        ECODB_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
        ECODB_RETURN_NOT_OK(ExpectSymbol(")"));
        return inner;
      }
      if (t.text == "*") {
        Advance();
        return MakeAst(AstKind::kStar);
      }
      if (t.text == "-") {
        Advance();
        ECODB_ASSIGN_OR_RETURN(AstExprPtr operand, ParsePrimary());
        // Unary minus: 0 - operand.
        auto zero = MakeAst(AstKind::kIntLit);
        auto node = MakeAst(AstKind::kArith);
        node->arith_op = ArithOp::kSub;
        node->args.push_back(std::move(zero));
        node->args.push_back(std::move(operand));
        return node;
      }
      break;
    case TokenKind::kIdent: {
      if (t.upper == "DATE" && Ahead(1).kind == TokenKind::kString) {
        Advance();
        auto node = MakeAst(AstKind::kDateLit);
        node->str_value = Cur().text;
        Advance();
        return node;
      }
      std::string name = t.text;
      std::string upper = t.upper;
      Advance();
      if (AcceptSymbol("(")) {
        auto node = MakeAst(AstKind::kFuncCall);
        node->name = upper;
        if (!Cur().IsSymbol(")")) {
          for (;;) {
            if (Cur().IsSymbol("*")) {
              Advance();
              node->args.push_back(MakeAst(AstKind::kStar));
            } else {
              ECODB_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
              node->args.push_back(std::move(arg));
            }
            if (!AcceptSymbol(",")) break;
          }
        }
        ECODB_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
      // Optional table qualifier: t.col — keep only the column part
      // (TPC-H column names are globally unique).
      if (AcceptSymbol(".")) {
        if (Cur().kind != TokenKind::kIdent) {
          return Status::ParseError(
              StrFormat("expected column after '.' at offset %zu", Cur().pos));
        }
        name = Cur().text;
        Advance();
      }
      auto node = MakeAst(AstKind::kColumn);
      node->name = name;
      return node;
    }
    default:
      break;
  }
  return Status::ParseError(
      StrFormat("unexpected token at offset %zu", t.pos));
}

Result<SelectStatement> Parser::Parse() {
  SelectStatement stmt;
  ECODB_RETURN_NOT_OK(ExpectKeyword("SELECT"));

  if (AcceptSymbol("*")) {
    stmt.select_star = true;
  } else {
    for (;;) {
      SelectItem item;
      ECODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Cur().kind != TokenKind::kIdent) {
          return Status::ParseError(
              StrFormat("expected alias at offset %zu", Cur().pos));
        }
        item.alias = Cur().text;
        Advance();
      } else if (Cur().kind == TokenKind::kIdent && !IsReservedTail(Cur())) {
        item.alias = Cur().text;
        Advance();
      }
      stmt.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
  }

  ECODB_RETURN_NOT_OK(ExpectKeyword("FROM"));
  std::vector<AstExprPtr> join_conditions;
  for (;;) {
    if (Cur().kind != TokenKind::kIdent) {
      return Status::ParseError(
          StrFormat("expected table name at offset %zu", Cur().pos));
    }
    stmt.from_tables.push_back(Cur().text);
    Advance();
    if (AcceptSymbol(",")) continue;
    if (Cur().IsKeyword("INNER") || Cur().IsKeyword("JOIN")) {
      AcceptKeyword("INNER");
      ECODB_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      if (Cur().kind != TokenKind::kIdent) {
        return Status::ParseError(
            StrFormat("expected table name at offset %zu", Cur().pos));
      }
      stmt.from_tables.push_back(Cur().text);
      Advance();
      ECODB_RETURN_NOT_OK(ExpectKeyword("ON"));
      ECODB_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
      join_conditions.push_back(std::move(cond));
      // Allow chained JOIN ... ON ... JOIN ... ON ...
      if (Cur().IsKeyword("INNER") || Cur().IsKeyword("JOIN")) continue;
    }
    break;
  }

  if (AcceptKeyword("WHERE")) {
    ECODB_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  // Fold JOIN..ON conditions into WHERE (the planner extracts equi-joins).
  for (AstExprPtr& cond : join_conditions) {
    if (!stmt.where) {
      stmt.where = std::move(cond);
    } else {
      auto both = MakeAst(AstKind::kLogical);
      both->log_op = LogicalOp::kAnd;
      both->args.push_back(std::move(stmt.where));
      both->args.push_back(std::move(cond));
      stmt.where = std::move(both);
    }
  }

  if (AcceptKeyword("GROUP")) {
    ECODB_RETURN_NOT_OK(ExpectKeyword("BY"));
    for (;;) {
      ECODB_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      stmt.group_by.push_back(std::move(e));
      if (!AcceptSymbol(",")) break;
    }
  }

  if (AcceptKeyword("ORDER")) {
    ECODB_RETURN_NOT_OK(ExpectKeyword("BY"));
    for (;;) {
      OrderItem item;
      ECODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
  }

  if (AcceptKeyword("LIMIT")) {
    if (Cur().kind != TokenKind::kInt) {
      return Status::ParseError(
          StrFormat("expected integer after LIMIT at offset %zu", Cur().pos));
    }
    stmt.limit = Cur().int_value;
    Advance();
  }

  AcceptSymbol(";");
  if (Cur().kind != TokenKind::kEnd) {
    return Status::ParseError(
        StrFormat("trailing input at offset %zu", Cur().pos));
  }
  return stmt;
}

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  ECODB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ecodb::sql

// Binder: resolves parsed expressions against a schema, producing
// executable Expr trees.

#ifndef ECODB_SQL_BINDER_H_
#define ECODB_SQL_BINDER_H_

#include "ecodb/exec/expr.h"
#include "ecodb/sql/ast.h"
#include "ecodb/storage/schema.h"
#include "ecodb/util/result.h"

namespace ecodb::sql {

/// Binds a scalar (non-aggregate) expression; column names resolve
/// case-insensitively against `schema`. Aggregate calls are an error here
/// (the planner lifts them into AggSpecs first).
Result<ExprPtr> BindScalar(const AstExpr& ast, const Schema& schema);

/// True if the tree contains an aggregate function call.
bool ContainsAggregate(const AstExpr& ast);

/// True if `name` is one of SUM/COUNT/AVG/MIN/MAX.
bool IsAggregateName(const std::string& upper_name);

}  // namespace ecodb::sql

#endif  // ECODB_SQL_BINDER_H_

#include "ecodb/sql/binder.h"

#include "ecodb/util/strings.h"

namespace ecodb::sql {

bool IsAggregateName(const std::string& upper_name) {
  return upper_name == "SUM" || upper_name == "COUNT" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

bool ContainsAggregate(const AstExpr& ast) {
  if (ast.kind == AstKind::kFuncCall && IsAggregateName(ast.name)) {
    return true;
  }
  for (const AstExprPtr& a : ast.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

Result<ExprPtr> BindScalar(const AstExpr& ast, const Schema& schema) {
  switch (ast.kind) {
    case AstKind::kColumn: {
      int idx = schema.FindField(ast.name);
      if (idx < 0) {
        return Status::ParseError(
            StrFormat("unknown column '%s'", ast.name.c_str()));
      }
      return Col(idx, schema.field(idx).type, schema.field(idx).name);
    }
    case AstKind::kIntLit:
      return LitInt(ast.int_value);
    case AstKind::kDoubleLit:
      return LitDbl(ast.dbl_value);
    case AstKind::kStringLit:
      return LitStr(ast.str_value);
    case AstKind::kDateLit: {
      int32_t days = ParseDateToDays(ast.str_value);
      if (days == INT32_MIN) {
        return Status::ParseError(
            StrFormat("bad date literal '%s'", ast.str_value.c_str()));
      }
      return Lit(Value::Date(days));
    }
    case AstKind::kStar:
      return Status::ParseError("'*' is only valid in COUNT(*) or SELECT *");
    case AstKind::kCompare: {
      ECODB_ASSIGN_OR_RETURN(ExprPtr l, BindScalar(*ast.args[0], schema));
      ECODB_ASSIGN_OR_RETURN(ExprPtr r, BindScalar(*ast.args[1], schema));
      return Cmp(ast.cmp_op, std::move(l), std::move(r));
    }
    case AstKind::kLogical: {
      std::vector<ExprPtr> operands;
      for (const AstExprPtr& a : ast.args) {
        ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*a, schema));
        operands.push_back(std::move(e));
      }
      return ast.log_op == LogicalOp::kAnd ? And(std::move(operands))
                                           : Or(std::move(operands));
    }
    case AstKind::kNot: {
      ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*ast.args[0], schema));
      return Not(std::move(e));
    }
    case AstKind::kArith: {
      ECODB_ASSIGN_OR_RETURN(ExprPtr l, BindScalar(*ast.args[0], schema));
      ECODB_ASSIGN_OR_RETURN(ExprPtr r, BindScalar(*ast.args[1], schema));
      return Arith(ast.arith_op, std::move(l), std::move(r));
    }
    case AstKind::kBetween: {
      ECODB_ASSIGN_OR_RETURN(ExprPtr e, BindScalar(*ast.args[0], schema));
      ECODB_ASSIGN_OR_RETURN(ExprPtr lo, BindScalar(*ast.args[1], schema));
      ECODB_ASSIGN_OR_RETURN(ExprPtr hi, BindScalar(*ast.args[2], schema));
      return Between(std::move(e), std::move(lo), std::move(hi));
    }
    case AstKind::kInList: {
      ECODB_ASSIGN_OR_RETURN(ExprPtr operand,
                             BindScalar(*ast.args[0], schema));
      std::vector<Value> values;
      for (size_t i = 1; i < ast.args.size(); ++i) {
        ECODB_ASSIGN_OR_RETURN(ExprPtr v, BindScalar(*ast.args[i], schema));
        if (v->kind() != ExprKind::kLiteral) {
          return Status::ParseError("IN list items must be literals");
        }
        values.push_back(static_cast<const LiteralExpr&>(*v).value());
      }
      return InList(std::move(operand), std::move(values));
    }
    case AstKind::kFuncCall:
      return Status::ParseError(
          StrFormat("aggregate/function '%s' not allowed here",
                    ast.name.c_str()));
  }
  return Status::Internal("unhandled AST kind");
}

}  // namespace ecodb::sql

#include "ecodb/sql/ast.h"

#include "ecodb/util/strings.h"

namespace ecodb::sql {

AstExprPtr MakeAst(AstKind kind) {
  auto e = std::make_unique<AstExpr>();
  e->kind = kind;
  return e;
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstKind::kColumn:
      return name;
    case AstKind::kIntLit:
      return StrFormat("%lld", static_cast<long long>(int_value));
    case AstKind::kDoubleLit:
      return FormatDouble(dbl_value, 6);
    case AstKind::kStringLit:
      return "'" + str_value + "'";
    case AstKind::kDateLit:
      return "DATE '" + str_value + "'";
    case AstKind::kStar:
      return "*";
    case AstKind::kCompare:
      return StrFormat("(%s %s %s)", args[0]->ToString().c_str(),
                       ecodb::ToString(cmp_op), args[1]->ToString().c_str());
    case AstKind::kLogical: {
      std::string out = "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += std::string(" ") + ecodb::ToString(log_op) + " ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case AstKind::kNot:
      return "NOT " + args[0]->ToString();
    case AstKind::kArith:
      return StrFormat("(%s %s %s)", args[0]->ToString().c_str(),
                       ecodb::ToString(arith_op),
                       args[1]->ToString().c_str());
    case AstKind::kBetween:
      return StrFormat("(%s BETWEEN %s AND %s)",
                       args[0]->ToString().c_str(),
                       args[1]->ToString().c_str(),
                       args[2]->ToString().c_str());
    case AstKind::kInList: {
      std::string out = args[0]->ToString() + " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case AstKind::kFuncCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace ecodb::sql

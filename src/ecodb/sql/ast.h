// Parsed (unbound) SQL syntax trees.

#ifndef ECODB_SQL_AST_H_
#define ECODB_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecodb/exec/expr.h"  // for CompareOp/LogicalOp/ArithOp enums

namespace ecodb::sql {

enum class AstKind {
  kColumn,
  kIntLit,
  kDoubleLit,
  kStringLit,
  kDateLit,
  kStar,      ///< bare `*` (only inside COUNT(*) or SELECT *)
  kCompare,
  kLogical,
  kNot,
  kArith,
  kBetween,   ///< args: operand, lo, hi
  kInList,    ///< args: operand, v1, v2, ...
  kFuncCall,  ///< name = function, args = arguments
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  AstKind kind;
  std::string name;       ///< column or function name
  int64_t int_value = 0;
  double dbl_value = 0.0;
  std::string str_value;
  CompareOp cmp_op = CompareOp::kEq;
  LogicalOp log_op = LogicalOp::kAnd;
  ArithOp arith_op = ArithOp::kAdd;
  std::vector<AstExprPtr> args;

  std::string ToString() const;
};

AstExprPtr MakeAst(AstKind kind);

struct SelectItem {
  AstExprPtr expr;
  std::string alias;  ///< empty if none
};

struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

/// SELECT ... FROM t1, t2 [JOIN t ON ...] WHERE ... GROUP BY ...
/// ORDER BY ... LIMIT n
struct SelectStatement {
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<std::string> from_tables;
  AstExprPtr where;  ///< null if absent (JOIN..ON conditions are folded in)
  std::vector<AstExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
};

}  // namespace ecodb::sql

#endif  // ECODB_SQL_AST_H_

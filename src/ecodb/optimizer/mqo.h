// Multi-query optimization for QED (paper Section 4; Sellis [14]).
//
// A batch of structurally identical single-table selection queries is
// merged into ONE query whose filter is the disjunction of the member
// predicates. The merged result is then split back into per-query results
// in "application logic", whose time and energy cost the paper explicitly
// includes — SplitMergedResult charges it through the ExecContext.

#ifndef ECODB_OPTIMIZER_MQO_H_
#define ECODB_OPTIMIZER_MQO_H_

#include <vector>

#include "ecodb/exec/exec_context.h"
#include "ecodb/exec/plan.h"
#include "ecodb/util/result.h"

namespace ecodb {

struct MergedSelection {
  /// The single merged plan: Project(Filter(Scan, OR(p1..pn))).
  PlanNodePtr plan;
  /// The member predicates, bound to the scan schema, in batch order.
  std::vector<ExprPtr> member_predicates;
  /// Index (in the merged plan's *output* schema) of the column the
  /// predicates test, for application-side splitting; -1 if the column is
  /// not projected (splitting then must re-run predicates on scan rows,
  /// which we disallow — the projection must include the filter column).
  int split_column = -1;
  /// The literal each member tests for equality, in batch order.
  std::vector<Value> split_values;
};

/// Merges a batch of selection plans. Requirements (checked):
///  * every plan is Project(Filter(Scan(T))) on the same table T,
///  * identical projection lists,
///  * each filter is `column = literal` on the same column,
///  * the projection includes that column.
/// `hashed_in_list`: evaluate the merged disjunction as a hash-set IN
/// probe instead of a short-circuit OR chain (ablation; MySQL's OR chain
/// is the paper-faithful default).
Result<MergedSelection> MergeSelections(
    const std::vector<const PlanNode*>& plans, bool hashed_in_list = false);

/// Splits merged-query output rows back into per-query result sets,
/// charging the comparison work to `ctx` (the paper's "little bit of extra
/// work ... in the application logic"). Rows that match no member (cannot
/// happen for exact merges; can for widened ones) are dropped.
std::vector<std::vector<Row>> SplitMergedResult(
    const MergedSelection& merged, const std::vector<Row>& merged_rows,
    ExecContext* ctx);

// ---------------------------------------------------------------------------
// Shared-scan aggregation: QED generalized beyond simple selections
// (Section 4: "generalization of our method to more complex workloads
// (beyond simple select queries) is feasible").
// ---------------------------------------------------------------------------

/// A batch of *global-aggregation* queries over the same table (Q6-shaped:
/// Aggregate(Filter(Scan(T))) with no GROUP BY), evaluated in ONE scan:
/// each tuple is tested against every member's filter (short-circuit) and
/// updates the matching members' accumulators. No result splitting is
/// needed — each member owns its accumulators.
struct SharedAggBatch {
  const PlanNode* scan = nullptr;           ///< common table scan
  std::vector<ExprPtr> filters;             ///< per member, scan schema
  std::vector<std::vector<AggSpec>> aggs;   ///< per member
  std::vector<Schema> output_schemas;       ///< per member
};

/// Validates and decomposes a batch of aggregation plans. Requirements:
///  * every plan is Aggregate(Filter(Scan(T))) or Aggregate(Scan(T)),
///  * the same table T throughout,
///  * no GROUP BY (global aggregates only).
Result<SharedAggBatch> AnalyzeSharedAggBatch(
    const std::vector<const PlanNode*>& plans);

/// Executes the batch in one pass, charging the scan once plus per-member
/// predicate/aggregate work. Returns one single-row result per member, in
/// batch order, identical to running each plan individually.
Result<std::vector<std::vector<Row>>> RunSharedScanAggregates(
    const SharedAggBatch& batch, ExecContext* ctx);

}  // namespace ecodb

#endif  // ECODB_OPTIMIZER_MQO_H_

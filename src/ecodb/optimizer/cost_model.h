// Energy-aware cost model.
//
// The paper's framing: "For a DBMS to generate Figure 1, it must be aware
// of system hardware capabilities ... and take that into account during
// query optimization". This model predicts BOTH response time and energy
// for a physical plan under a given PVC operating point, without running
// it — the hook that makes energy a first-class optimizer metric. It uses
// simple table statistics (row counts, per-column NDV/min/max) for
// cardinalities and the same machine/profile constants the simulator
// charges, so predictions track measurements.

#ifndef ECODB_OPTIMIZER_COST_MODEL_H_
#define ECODB_OPTIMIZER_COST_MODEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ecodb/core/engine_profile.h"
#include "ecodb/exec/plan.h"
#include "ecodb/sim/machine.h"
#include "ecodb/storage/catalog.h"

namespace ecodb {

/// Per-column statistics gathered at load time.
struct ColumnStats {
  double ndv = 1.0;  ///< number of distinct values (estimated)
  double min = 0.0;  ///< numeric min (0 for strings)
  double max = 0.0;  ///< numeric max
  bool numeric = false;
};

struct TableStats {
  double rows = 0;
  std::vector<ColumnStats> columns;
};

/// Computes stats for a table (exact NDV up to a sample cap).
TableStats ComputeTableStats(const Table& table);

/// Predicted cost of a plan under specific PVC settings.
struct PlanCost {
  double est_rows = 0;       ///< output cardinality
  double cpu_cycles = 0;     ///< total cycles the plan will charge
  double mem_lines = 0;      ///< DRAM lines
  double io_seconds = 0;     ///< simulated disk time
  double est_seconds = 0;    ///< predicted response time
  double est_cpu_joules = 0; ///< predicted CPU package energy
  double est_edp = 0;        ///< est_cpu_joules * est_seconds
};

class CostModel {
 public:
  /// The machine is used for frequency/power/latency queries only; it is
  /// not mutated (settings are passed per Estimate call).
  CostModel(const Catalog* catalog, const EngineProfile* profile,
            const MachineConfig& machine_config);

  /// Predicts cost for `plan` under `settings`. Cardinality estimation is
  /// independent of settings; time/energy are not.
  Result<PlanCost> Estimate(const PlanNode& plan,
                            const SystemSettings& settings) const;

  /// Selectivity of a predicate against a schema with known stats
  /// (exposed for tests; heuristic fallbacks follow System-R tradition).
  double EstimateSelectivity(const Expr& predicate, const PlanNode& node,
                             const TableStats* stats) const;

  const TableStats* GetTableStats(const std::string& name) const;

 private:
  struct NodeEstimate {
    double rows = 0;
    double cycles = 0;
    double lines = 0;
    double io_seconds = 0;
  };

  Result<NodeEstimate> EstimateNode(const PlanNode& node) const;

  const Catalog* catalog_;
  const EngineProfile* profile_;
  MachineConfig machine_config_;
  std::unordered_map<std::string, TableStats> stats_;
};

}  // namespace ecodb

#endif  // ECODB_OPTIMIZER_COST_MODEL_H_

#include "ecodb/optimizer/mqo.h"

#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

struct SelectionShape {
  const PlanNode* project;
  const PlanNode* filter;
  const PlanNode* scan;
  const ColumnExpr* column;
  const LiteralExpr* literal;
};

Result<SelectionShape> AnalyzeSelection(const PlanNode& plan) {
  SelectionShape s;
  if (plan.kind != PlanKind::kProject || plan.children.size() != 1) {
    return Status::InvalidArgument("plan root is not Project");
  }
  s.project = &plan;
  const PlanNode& filter = *plan.children[0];
  if (filter.kind != PlanKind::kFilter || filter.children.size() != 1) {
    return Status::InvalidArgument("plan is not Project(Filter(...))");
  }
  s.filter = &filter;
  const PlanNode& scan = *filter.children[0];
  if (scan.kind != PlanKind::kScan) {
    return Status::InvalidArgument("plan is not Project(Filter(Scan))");
  }
  s.scan = &scan;
  if (filter.predicate->kind() != ExprKind::kCompare) {
    return Status::InvalidArgument("filter is not a simple comparison");
  }
  const auto& cmp = static_cast<const CompareExpr&>(*filter.predicate);
  if (cmp.op() != CompareOp::kEq) {
    return Status::InvalidArgument("filter is not an equality");
  }
  if (cmp.left()->kind() == ExprKind::kColumn &&
      cmp.right()->kind() == ExprKind::kLiteral) {
    s.column = static_cast<const ColumnExpr*>(cmp.left().get());
    s.literal = static_cast<const LiteralExpr*>(cmp.right().get());
  } else if (cmp.right()->kind() == ExprKind::kColumn &&
             cmp.left()->kind() == ExprKind::kLiteral) {
    s.column = static_cast<const ColumnExpr*>(cmp.right().get());
    s.literal = static_cast<const LiteralExpr*>(cmp.left().get());
  } else {
    return Status::InvalidArgument("filter is not column = literal");
  }
  return s;
}

}  // namespace

Result<MergedSelection> MergeSelections(
    const std::vector<const PlanNode*>& plans, bool hashed_in_list) {
  if (plans.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  std::vector<SelectionShape> shapes;
  shapes.reserve(plans.size());
  for (const PlanNode* p : plans) {
    ECODB_ASSIGN_OR_RETURN(SelectionShape s, AnalyzeSelection(*p));
    shapes.push_back(s);
  }
  const SelectionShape& first = shapes.front();
  for (const SelectionShape& s : shapes) {
    if (s.scan->table_name != first.scan->table_name) {
      return Status::InvalidArgument("batch spans multiple tables");
    }
    if (s.column->index() != first.column->index()) {
      return Status::InvalidArgument("batch filters different columns");
    }
    if (s.project->exprs.size() != first.project->exprs.size()) {
      return Status::InvalidArgument("batch projections differ");
    }
    for (size_t i = 0; i < s.project->exprs.size(); ++i) {
      if (s.project->exprs[i]->ToString() !=
          first.project->exprs[i]->ToString()) {
        return Status::InvalidArgument("batch projections differ");
      }
    }
  }

  MergedSelection out;
  std::vector<ExprPtr> disjuncts;
  std::vector<Value> values;
  ExprPtr col = Col(first.column->index(), first.column->type(),
                    first.column->name());
  for (const SelectionShape& s : shapes) {
    disjuncts.push_back(Eq(col, Lit(s.literal->value())));
    values.push_back(s.literal->value());
    out.member_predicates.push_back(disjuncts.back());
  }

  ExprPtr merged_pred;
  if (hashed_in_list) {
    merged_pred = InList(col, values, /*hashed=*/true);
  } else {
    merged_pred = Or(disjuncts);
  }

  // Locate the filter column in the projection output.
  for (size_t i = 0; i < first.project->exprs.size(); ++i) {
    const Expr& e = *first.project->exprs[i];
    if (e.kind() == ExprKind::kColumn &&
        static_cast<const ColumnExpr&>(e).index() == first.column->index()) {
      out.split_column = static_cast<int>(i);
      break;
    }
  }
  if (out.split_column < 0) {
    return Status::InvalidArgument(
        "projection does not include the filter column; cannot split");
  }

  PlanNodePtr scan = ClonePlan(*first.scan);
  PlanNodePtr filter = MakeFilter(std::move(scan), merged_pred);
  out.plan = MakeProject(std::move(filter), first.project->exprs,
                         first.project->names);
  out.split_values = std::move(values);
  return out;
}

std::vector<std::vector<Row>> SplitMergedResult(
    const MergedSelection& merged, const std::vector<Row>& merged_rows,
    ExecContext* ctx) {
  std::vector<std::vector<Row>> per_query(merged.split_values.size());
  size_t col = static_cast<size_t>(merged.split_column);
  double compares = 0;
  for (const Row& row : merged_rows) {
    const Value& v = row[col];
    for (size_t q = 0; q < merged.split_values.size(); ++q) {
      compares += 1;
      if (v.Compare(merged.split_values[q]) == 0) {
        per_query[q].push_back(row);
        break;
      }
    }
  }
  const EngineProfile& p = ctx->profile();
  double rows = static_cast<double>(merged_rows.size());
  ctx->ChargeCycles(
      rows * p.split_row_cycles + compares * p.split_compare_cycles,
      rows * p.split_row_lines);
  ctx->Flush();
  return per_query;
}

Result<SharedAggBatch> AnalyzeSharedAggBatch(
    const std::vector<const PlanNode*>& plans) {
  if (plans.empty()) return Status::InvalidArgument("empty batch");
  SharedAggBatch batch;
  for (const PlanNode* plan : plans) {
    const PlanNode* agg = plan;
    if (agg->kind != PlanKind::kAggregate || agg->children.size() != 1) {
      return Status::InvalidArgument("plan root is not a global Aggregate");
    }
    if (!agg->group_by.empty()) {
      return Status::InvalidArgument(
          "GROUP BY aggregates cannot share accumulators");
    }
    const PlanNode* below = agg->children[0].get();
    ExprPtr filter;  // null = unconditional
    if (below->kind == PlanKind::kFilter && below->children.size() == 1) {
      filter = below->predicate;
      below = below->children[0].get();
    }
    if (below->kind != PlanKind::kScan) {
      return Status::InvalidArgument(
          "plan is not Aggregate(Filter(Scan)) / Aggregate(Scan)");
    }
    if (batch.scan == nullptr) {
      batch.scan = below;
    } else if (below->table_name != batch.scan->table_name) {
      return Status::InvalidArgument("batch spans multiple tables");
    }
    batch.filters.push_back(std::move(filter));
    batch.aggs.push_back(agg->aggs);
    batch.output_schemas.push_back(agg->output_schema);
  }
  return batch;
}

namespace {

struct SharedAcc {
  double sum = 0.0;
  uint64_t count = 0;
  Value min, max;
};

Row AccsToRow(const std::vector<AggSpec>& specs,
              const std::vector<SharedAcc>& accs) {
  Row out;
  out.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const SharedAcc& a = accs[i];
    switch (specs[i].kind) {
      case AggSpec::Kind::kCount:
        out.push_back(Value::Int(static_cast<int64_t>(a.count)));
        break;
      case AggSpec::Kind::kSum:
        out.push_back(a.count ? Value::Dbl(a.sum) : Value::Null());
        break;
      case AggSpec::Kind::kAvg:
        out.push_back(a.count ? Value::Dbl(a.sum / static_cast<double>(a.count))
                              : Value::Null());
        break;
      case AggSpec::Kind::kMin:
        out.push_back(a.count ? a.min : Value::Null());
        break;
      case AggSpec::Kind::kMax:
        out.push_back(a.count ? a.max : Value::Null());
        break;
    }
  }
  return out;
}

}  // namespace

Result<std::vector<std::vector<Row>>> RunSharedScanAggregates(
    const SharedAggBatch& batch, ExecContext* ctx) {
  size_t n = batch.filters.size();
  std::vector<std::vector<SharedAcc>> accs(n);
  for (size_t q = 0; q < n; ++q) accs[q].resize(batch.aggs[q].size());

  SeqScanOp scan(ctx, batch.scan->table_name);
  ECODB_RETURN_NOT_OK(scan.Open());
  Row row;
  bool has = false;
  for (;;) {
    ECODB_RETURN_NOT_OK(scan.Next(&row, &has));
    if (!has) break;
    for (size_t q = 0; q < n; ++q) {
      if (batch.filters[q]) {
        bool pass =
            batch.filters[q]->Eval(row, ctx->eval_counters()).IsTruthy();
        if (!pass) continue;
      }
      const std::vector<AggSpec>& specs = batch.aggs[q];
      for (size_t i = 0; i < specs.size(); ++i) {
        SharedAcc& a = accs[q][i];
        if (specs[i].kind == AggSpec::Kind::kCount && !specs[i].arg) {
          ++a.count;
          continue;
        }
        Value v = specs[i].arg->Eval(row, ctx->eval_counters());
        if (v.is_null()) continue;
        switch (specs[i].kind) {
          case AggSpec::Kind::kCount:
            ++a.count;
            break;
          case AggSpec::Kind::kSum:
          case AggSpec::Kind::kAvg:
            a.sum += v.AsDouble();
            ++a.count;
            break;
          case AggSpec::Kind::kMin:
            if (a.count == 0 || v.Compare(a.min) < 0) a.min = v;
            ++a.count;
            break;
          case AggSpec::Kind::kMax:
            if (a.count == 0 || v.Compare(a.max) > 0) a.max = v;
            ++a.count;
            break;
        }
      }
      ctx->ChargeAggUpdate(static_cast<int>(specs.size()));
    }
    ctx->ChargeEvalOps();
  }
  scan.Close();

  std::vector<std::vector<Row>> results(n);
  for (size_t q = 0; q < n; ++q) {
    results[q].push_back(AccsToRow(batch.aggs[q], accs[q]));
    ctx->ChargeOutputTuple(batch.output_schemas[q].RowWidth());
  }
  ctx->Flush();
  return results;
}

}  // namespace ecodb

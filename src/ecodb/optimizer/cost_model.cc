#include "ecodb/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ecodb/storage/heap_file.h"
#include "ecodb/util/strings.h"

namespace ecodb {

TableStats ComputeTableStats(const Table& table) {
  constexpr size_t kSampleCap = 200000;
  TableStats stats;
  stats.rows = static_cast<double>(table.num_rows());
  size_t n = std::min(table.num_rows(), kSampleCap);
  double scale =
      n > 0 ? static_cast<double>(table.num_rows()) / static_cast<double>(n)
            : 1.0;
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats cs;
    std::unordered_set<size_t> distinct;
    bool first = true;
    for (size_t r = 0; r < n; ++r) {
      Value v = col.GetValue(r);
      distinct.insert(v.Hash());
      if (v.type() != ValueType::kString && !v.is_null()) {
        cs.numeric = true;
        double d = v.AsDouble();
        if (first) {
          cs.min = cs.max = d;
          first = false;
        } else {
          cs.min = std::min(cs.min, d);
          cs.max = std::max(cs.max, d);
        }
      }
    }
    // If the sample saturated its key space, NDV is ~exact; if nearly all
    // sampled values were distinct, extrapolate linearly (key columns).
    double d = static_cast<double>(distinct.size());
    if (n > 0 && d > 0.9 * static_cast<double>(n)) {
      cs.ndv = d * scale;
    } else {
      cs.ndv = std::max(1.0, d);
    }
    stats.columns.push_back(cs);
  }
  return stats;
}

CostModel::CostModel(const Catalog* catalog, const EngineProfile* profile,
                     const MachineConfig& machine_config)
    : catalog_(catalog),
      profile_(profile),
      machine_config_(machine_config) {
  for (const std::string& name : catalog->TableNames()) {
    const Table* t = catalog->FindTable(name);
    stats_[ToLower(name)] = ComputeTableStats(*t);
  }
}

const TableStats* CostModel::GetTableStats(const std::string& name) const {
  auto it = stats_.find(ToLower(name));
  return it == stats_.end() ? nullptr : &it->second;
}

namespace {

/// Returns the ColumnExpr if e is a bare column, else nullptr.
const ColumnExpr* AsColumn(const Expr& e) {
  return e.kind() == ExprKind::kColumn ? static_cast<const ColumnExpr*>(&e)
                                       : nullptr;
}

}  // namespace

double CostModel::EstimateSelectivity(const Expr& predicate,
                                      const PlanNode& node,
                                      const TableStats* stats) const {
  switch (predicate.kind()) {
    case ExprKind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(predicate);
      const ColumnExpr* col = AsColumn(*cmp.left());
      const Expr* rhs = cmp.right().get();
      if (col == nullptr) {
        col = AsColumn(*cmp.right());
        rhs = cmp.left().get();
      }
      const ColumnStats* cs = nullptr;
      if (col != nullptr && stats != nullptr &&
          static_cast<size_t>(col->index()) < stats->columns.size()) {
        cs = &stats->columns[static_cast<size_t>(col->index())];
      }
      switch (cmp.op()) {
        case CompareOp::kEq:
          return cs != nullptr ? 1.0 / std::max(1.0, cs->ndv) : 0.05;
        case CompareOp::kNe:
          return cs != nullptr ? 1.0 - 1.0 / std::max(1.0, cs->ndv) : 0.95;
        default: {
          // Range predicate: interpolate against min/max when the literal
          // side is a known constant.
          if (cs != nullptr && cs->numeric && rhs != nullptr &&
              rhs->kind() == ExprKind::kLiteral && cs->max > cs->min) {
            double v = static_cast<const LiteralExpr*>(rhs)->value().AsDouble();
            double frac = (v - cs->min) / (cs->max - cs->min);
            frac = std::clamp(frac, 0.0, 1.0);
            bool less = cmp.op() == CompareOp::kLt ||
                        cmp.op() == CompareOp::kLe;
            // If the column was on the right, the inequality flips.
            if (AsColumn(*cmp.left()) == nullptr) less = !less;
            return std::clamp(less ? frac : 1.0 - frac, 0.0001, 1.0);
          }
          return 1.0 / 3.0;
        }
      }
    }
    case ExprKind::kLogical: {
      const auto& lg = static_cast<const LogicalExpr&>(predicate);
      if (lg.op() == LogicalOp::kAnd) {
        double sel = 1.0;
        for (const ExprPtr& e : lg.operands()) {
          sel *= EstimateSelectivity(*e, node, stats);
        }
        return sel;
      }
      double keep = 1.0;
      for (const ExprPtr& e : lg.operands()) {
        keep *= 1.0 - EstimateSelectivity(*e, node, stats);
      }
      return 1.0 - keep;
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(
                       *static_cast<const NotExpr&>(predicate).operand(),
                       node, stats);
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const BetweenExpr&>(predicate);
      const ColumnExpr* col = AsColumn(*bt.operand());
      if (col != nullptr && stats != nullptr &&
          static_cast<size_t>(col->index()) < stats->columns.size() &&
          bt.lo()->kind() == ExprKind::kLiteral &&
          bt.hi()->kind() == ExprKind::kLiteral) {
        const ColumnStats& cs =
            stats->columns[static_cast<size_t>(col->index())];
        if (cs.numeric && cs.max > cs.min) {
          double lo = static_cast<const LiteralExpr*>(bt.lo().get())
                          ->value().AsDouble();
          double hi = static_cast<const LiteralExpr*>(bt.hi().get())
                          ->value().AsDouble();
          return std::clamp((hi - lo) / (cs.max - cs.min), 0.0001, 1.0);
        }
      }
      return 0.1;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(predicate);
      const ColumnExpr* col = AsColumn(*in.operand());
      if (col != nullptr && stats != nullptr &&
          static_cast<size_t>(col->index()) < stats->columns.size()) {
        const ColumnStats& cs =
            stats->columns[static_cast<size_t>(col->index())];
        return std::clamp(
            static_cast<double>(in.values().size()) / std::max(1.0, cs.ndv),
            0.0, 1.0);
      }
      return std::min(1.0, 0.05 * static_cast<double>(in.values().size()));
    }
    default:
      return 0.5;
  }
}

namespace {

/// Average number of comparison ops one evaluation of `e` performs,
/// assuming short-circuit with per-term selectivity `term_sel` (used for
/// OR chains / IN lists where evaluation stops at the first hit).
double AvgComparisonsPerEval(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kCompare:
      return 1.0;
    case ExprKind::kBetween:
      return 2.0;
    case ExprKind::kNot:
      return AvgComparisonsPerEval(
          *static_cast<const NotExpr&>(e).operand());
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(e);
      if (in.hashed()) return 1.0;
      // A matching tuple stops halfway on average; a non-matching tuple
      // scans the whole list. With k values each of selectivity ~1/ndv the
      // aggregate is dominated by non-matches for small k; use the
      // conservative midpoint between k/2 and k.
      double k = static_cast<double>(in.values().size());
      return 0.75 * k;
    }
    case ExprKind::kLogical: {
      const auto& lg = static_cast<const LogicalExpr&>(e);
      // Expected #terms inspected under short-circuit ~ (n+1)/2 for
      // uniformly-deciding terms; weight each term's own cost.
      double per_term = 0;
      for (const ExprPtr& op : lg.operands()) {
        per_term += AvgComparisonsPerEval(*op);
      }
      double n = static_cast<double>(lg.operands().size());
      return per_term * ((n + 1.0) / (2.0 * n));
    }
    default:
      return 0.0;
  }
}

}  // namespace

Result<CostModel::NodeEstimate> CostModel::EstimateNode(
    const PlanNode& node) const {
  NodeEstimate est;
  const EngineProfile& p = *profile_;
  switch (node.kind) {
    case PlanKind::kScan: {
      const TableStats* ts = GetTableStats(node.table_name);
      if (ts == nullptr) {
        return Status::NotFound(
            StrFormat("no stats for table %s", node.table_name.c_str()));
      }
      double rows = ts->rows;
      int width = node.output_schema.RowWidth();
      est.rows = rows;
      est.cycles = rows * (p.scan_tuple_cycles + p.scan_byte_cycles * width);
      est.lines = rows * width / 64.0 * p.scan_line_factor;
      if (p.disk_backed) {
        // Warm-run assumption: pages resident, no I/O. (Cold-run costing
        // would add num_pages * per-page read time; PVC experiments are
        // warm.)
        est.io_seconds = 0;
      }
      return est;
    }
    case PlanKind::kFilter: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate child,
                             EstimateNode(*node.children[0]));
      const PlanNode& scan_child = *node.children[0];
      const TableStats* ts = scan_child.kind == PlanKind::kScan
                                 ? GetTableStats(scan_child.table_name)
                                 : nullptr;
      double sel = EstimateSelectivity(*node.predicate, node, ts);
      double avg_cmp = AvgComparisonsPerEval(*node.predicate);
      est = child;
      est.cycles += child.rows * avg_cmp * p.compare_cycles;
      est.rows = child.rows * sel;
      return est;
    }
    case PlanKind::kProject: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate child,
                             EstimateNode(*node.children[0]));
      est = child;
      est.cycles += child.rows * p.arith_cycles *
                    static_cast<double>(node.exprs.size());
      return est;
    }
    case PlanKind::kHashJoin: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate build,
                             EstimateNode(*node.children[0]));
      ECODB_ASSIGN_OR_RETURN(NodeEstimate probe,
                             EstimateNode(*node.children[1]));
      est.cycles = build.cycles + probe.cycles;
      est.lines = build.lines + probe.lines;
      est.io_seconds = build.io_seconds + probe.io_seconds;
      int bw = node.children[0]->output_schema.RowWidth();
      int pw = node.children[1]->output_schema.RowWidth();
      est.cycles += build.rows * (p.hash_build_cycles + p.scan_byte_cycles * bw);
      est.cycles += probe.rows * (p.hash_probe_cycles + p.scan_byte_cycles * pw);
      est.lines += (build.rows + probe.rows) * p.hash_op_lines;
      // Join cardinality: |B x P| / max(ndv of the key domains); with key
      // stats unavailable post-join, fall back to FK-join heuristic:
      // output ~= probe rows scaled by build-side selectivity.
      double build_base = 1.0;
      const PlanNode* b = node.children[0].get();
      while (b->kind != PlanKind::kScan && !b->children.empty()) {
        b = b->children[0].get();
      }
      if (b->kind == PlanKind::kScan) {
        const TableStats* ts = GetTableStats(b->table_name);
        if (ts != nullptr && ts->rows > 0) {
          build_base = build.rows / ts->rows;
        }
      }
      est.rows = std::max(1.0, probe.rows * std::min(1.0, build_base));
      // Grace-hash spill I/O.
      if (p.disk_backed && p.spill_fraction > 0) {
        double bytes = (build.rows * bw + probe.rows * pw) * p.spill_fraction;
        double reqs = bytes / kPageSizeBytes;
        DiskModel disk(machine_config_.disk);
        DiskOpCost c = disk.ReadCost(static_cast<uint64_t>(2 * bytes),
                                     static_cast<uint64_t>(2 * reqs) + 1,
                                     false);
        est.io_seconds += c.total_s;
      }
      return est;
    }
    case PlanKind::kNestedLoopJoin: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate outer,
                             EstimateNode(*node.children[0]));
      ECODB_ASSIGN_OR_RETURN(NodeEstimate inner,
                             EstimateNode(*node.children[1]));
      est.cycles = outer.cycles + inner.cycles;
      est.lines = outer.lines + inner.lines;
      est.io_seconds = outer.io_seconds + inner.io_seconds;
      double pairs = outer.rows * inner.rows;
      double sel = 0.1;
      double avg_cmp = 1.0;
      if (node.predicate) {
        sel = EstimateSelectivity(*node.predicate, node, nullptr);
        avg_cmp = AvgComparisonsPerEval(*node.predicate);
      } else {
        sel = 1.0;
        avg_cmp = 0.0;
      }
      est.cycles += pairs * avg_cmp * p.compare_cycles;
      est.rows = std::max(1.0, pairs * sel);
      return est;
    }
    case PlanKind::kAggregate: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate child,
                             EstimateNode(*node.children[0]));
      est = child;
      est.cycles += child.rows *
                    (p.agg_update_cycles *
                         static_cast<double>(std::max<size_t>(1, node.aggs.size())) +
                     p.hash_probe_cycles);
      est.lines += child.rows * p.hash_op_lines;
      // Group count heuristic: sqrt of input, capped at input size, or 1
      // for global aggregates.
      est.rows = node.group_by.empty()
                     ? 1.0
                     : std::max(1.0, std::min(child.rows,
                                              std::sqrt(child.rows) * 2.0));
      return est;
    }
    case PlanKind::kSort: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate child,
                             EstimateNode(*node.children[0]));
      est = child;
      double n = std::max(2.0, child.rows);
      est.cycles += n * std::log2(n) * p.sort_compare_cycles;
      return est;
    }
    case PlanKind::kLimit: {
      ECODB_ASSIGN_OR_RETURN(NodeEstimate child,
                             EstimateNode(*node.children[0]));
      est = child;
      if (node.limit >= 0) {
        est.rows = std::min(child.rows, static_cast<double>(node.limit));
      }
      return est;
    }
  }
  return Status::Internal("unknown plan kind in cost model");
}

Result<PlanCost> CostModel::Estimate(const PlanNode& plan,
                                     const SystemSettings& settings) const {
  ECODB_ASSIGN_OR_RETURN(NodeEstimate est, EstimateNode(plan));

  // Output delivery cost for the root.
  int width = plan.output_schema.RowWidth();
  est.cycles += est.rows * (profile_->output_tuple_cycles +
                            profile_->output_byte_cycles * width);
  est.lines += est.rows * profile_->output_tuple_lines;

  // Underclock CPI penalty, as the execution engine charges it.
  double uc = settings.underclock;
  est.cycles *= 1.0 + profile_->underclock_cpi_penalty * uc * uc * uc;

  // Convert to time/energy with a scratch machine at these settings.
  Machine machine(machine_config_);
  ECODB_RETURN_NOT_OK(machine.ApplySettings(settings));
  machine.SetLoadClass(profile_->load_class);

  PlanCost cost;
  cost.est_rows = est.rows;
  cost.cpu_cycles = est.cycles;
  cost.mem_lines = est.lines;
  cost.io_seconds = est.io_seconds;
  double busy_s = machine.PredictExecuteSeconds(est.cycles, est.lines);
  cost.est_seconds = busy_s + est.io_seconds;
  cost.est_cpu_joules =
      busy_s * machine.PredictExecutePowerW(est.cycles, est.lines) +
      est.io_seconds * machine.cpu_model().IdlePowerW();
  cost.est_edp = cost.est_cpu_joules * cost.est_seconds;
  return cost;
}

}  // namespace ecodb

#include "ecodb/storage/catalog.h"

#include "ecodb/util/strings.h"

namespace ecodb {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (FindTable(name) != nullptr) {
    return Status::AlreadyExists(StrFormat("table %s", name.c_str()));
  }
  auto entry = std::make_unique<TableEntry>();
  entry->table = std::make_unique<Table>(name, std::move(schema));
  entry->file = HeapFile(next_file_id_++, 0,
                         entry->table->schema().RowWidth());
  Table* raw = entry->table.get();
  tables_.emplace_back(ToLower(name), std::move(entry));
  return raw;
}

Table* Catalog::FindTable(const std::string& name) const {
  const TableEntry* e = FindEntry(name);
  return e ? e->table.get() : nullptr;
}

const TableEntry* Catalog::FindEntry(const std::string& name) const {
  std::string key = ToLower(name);
  for (const auto& [n, entry] : tables_) {
    if (n == key) return entry.get();
  }
  return nullptr;
}

Status Catalog::FinalizeLoad(const std::string& name) {
  std::string key = ToLower(name);
  for (auto& [n, entry] : tables_) {
    if (n == key) {
      entry->file.SetNumRows(entry->table->num_rows());
      return Status::OK();
    }
  }
  return Status::NotFound(StrFormat("table %s", name.c_str()));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [n, entry] : tables_) out.push_back(entry->table->name());
  return out;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [n, entry] : tables_) {
    total += entry->table->EstimatedBytes();
  }
  return total;
}

}  // namespace ecodb

#include "ecodb/storage/heap_file.h"

#include <algorithm>

namespace ecodb {

HeapFile::HeapFile(uint32_t file_id, uint64_t num_rows, int row_width)
    : file_id_(file_id) {
  rows_per_page_ = std::max<uint64_t>(
      1, kPageSizeBytes / static_cast<uint64_t>(std::max(1, row_width)));
  SetNumRows(num_rows);
}

void HeapFile::SetNumRows(uint64_t num_rows) {
  num_rows_ = num_rows;
  num_pages_ = (num_rows + rows_per_page_ - 1) / rows_per_page_;
}

}  // namespace ecodb

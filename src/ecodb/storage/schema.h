// Relational schemas.

#ifndef ECODB_STORAGE_SCHEMA_H_
#define ECODB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "ecodb/storage/value.h"

namespace ecodb {

struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
  /// Average on-disk width in bytes (used for page layout and the
  /// memory-traffic model). Strings default to 16.
  int avg_width = 8;

  Field() = default;
  Field(std::string n, ValueType t);
  Field(std::string n, ValueType t, int width);
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with this (case-insensitive) name, or -1.
  int FindField(const std::string& name) const;

  /// Sum of field widths: estimated bytes per tuple.
  int RowWidth() const;

  /// Concatenation (join output schema).
  static Schema Concat(const Schema& a, const Schema& b);

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_SCHEMA_H_

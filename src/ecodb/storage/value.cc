#include "ecodb/storage/value.h"

#include <cassert>
#include <functional>

#include "ecodb/util/strings.h"

namespace ecodb {

const char* ToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt64;
  out.i_ = v;
  return out;
}

Value Value::Dbl(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.d_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.s_ = std::move(v);
  return out;
}

Value Value::Date(int32_t days) {
  Value out;
  out.type_ = ValueType::kDate;
  out.i_ = days;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = ValueType::kBool;
  out.i_ = v ? 1 : 0;
  return out;
}

int64_t Value::AsInt() const {
  assert(type_ == ValueType::kInt64 || type_ == ValueType::kDate ||
         type_ == ValueType::kBool);
  return i_;
}

double Value::AsDouble() const {
  switch (type_) {
    case ValueType::kDouble:
      return d_;
    case ValueType::kInt64:
    case ValueType::kDate:
    case ValueType::kBool:
      return static_cast<double>(i_);
    default:
      assert(false && "AsDouble on non-numeric value");
      return 0.0;
  }
}

const std::string& Value::AsString() const {
  assert(type_ == ValueType::kString);
  return s_;
}

int32_t Value::AsDate() const {
  assert(type_ == ValueType::kDate);
  return static_cast<int32_t>(i_);
}

bool Value::AsBool() const {
  assert(type_ == ValueType::kBool);
  return i_ != 0;
}

bool Value::IsTruthy() const {
  switch (type_) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
    case ValueType::kInt64:
    case ValueType::kDate:
      return i_ != 0;
    case ValueType::kDouble:
      return d_ != 0.0;
    case ValueType::kString:
      return !s_.empty();
  }
  return false;
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble ||
         t == ValueType::kDate || t == ValueType::kBool;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (type_ == ValueType::kNull || other.type_ == ValueType::kNull) {
    if (type_ == other.type_) return 0;
    return type_ == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    // Fast exact path when neither side is a double.
    if (type_ != ValueType::kDouble && other.type_ != ValueType::kDouble) {
      if (i_ < other.i_) return -1;
      return i_ > other.i_ ? 1 : 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    return a > b ? 1 : 0;
  }
  if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
    int c = s_.compare(other.s_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mismatched non-comparable types: order by tag for sort totality.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return kNullValueHash;
    case ValueType::kString:
      return std::hash<std::string>{}(s_);
    case ValueType::kDouble:
      return HashDouble(d_);
    default:
      return std::hash<int64_t>{}(i_);
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return StrFormat("%lld", static_cast<long long>(i_));
    case ValueType::kDouble:
      return FormatDouble(d_, 4);
    case ValueType::kString:
      return s_;
    case ValueType::kDate:
      return DaysToDateString(static_cast<int32_t>(i_));
    case ValueType::kBool:
      return i_ ? "true" : "false";
  }
  return "?";
}

CellView CellView::Of(const Value& v) {
  CellView out;
  out.type = v.type();
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kDouble:
      out.d = v.AsDouble();
      break;
    case ValueType::kString:
      out.s = &v.AsString();
      break;
    default:  // int-backed: kInt64 / kDate / kBool
      out.i = v.AsInt();
      break;
  }
  return out;
}

// Mirror of Value::Compare — any change there must be replicated here.
int CompareCellViews(const CellView& a, const CellView& b) {
  if (a.type == ValueType::kNull || b.type == ValueType::kNull) {
    if (a.type == b.type) return 0;
    return a.type == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(a.type) && IsNumeric(b.type)) {
    if (a.type != ValueType::kDouble && b.type != ValueType::kDouble) {
      if (a.i < b.i) return -1;
      return a.i > b.i ? 1 : 0;
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    if (x < y) return -1;
    return x > y ? 1 : 0;
  }
  if (a.type == ValueType::kString && b.type == ValueType::kString) {
    // Dictionary-encoded lanes and dedup-interned pools frequently hand
    // both sides the same stable address; equal pointers are equal bytes.
    if (a.s == b.s) return 0;
    int c = a.s->compare(*b.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return static_cast<int>(a.type) < static_cast<int>(b.type) ? -1 : 1;
}

// Mirror of Value::Hash — any change there must be replicated here.
size_t HashCellView(const CellView& v) {
  switch (v.type) {
    case ValueType::kNull:
      return kNullValueHash;
    case ValueType::kString:
      return std::hash<std::string>{}(*v.s);
    case ValueType::kDouble:
      return Value::HashDouble(v.d);
    default:
      return std::hash<int64_t>{}(v.i);
  }
}

Value BoxCellView(const CellView& v) {
  switch (v.type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64:
      return Value::Int(v.i);
    case ValueType::kDouble:
      return Value::Dbl(v.d);
    case ValueType::kString:
      return Value::Str(*v.s);
    case ValueType::kDate:
      return Value::Date(static_cast<int32_t>(v.i));
    case ValueType::kBool:
      return Value::Bool(v.i != 0);
  }
  return Value::Null();
}

size_t HashRowKey(const Row& row, const std::vector<int>& key_cols) {
  size_t h = kRowKeyHashSeed;
  for (int c : key_cols) {
    h = HashCombineKey(h, row[static_cast<size_t>(c)].Hash());
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace ecodb

#include "ecodb/storage/table.h"

#include <cassert>

#include "ecodb/util/strings.h"

namespace ecodb {

size_t Column::size() const {
  switch (type_) {
    case ValueType::kDouble:
      return doubles_.size();
    case ValueType::kString:
      return strings_.size();
    default:
      return ints_.size();
  }
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int(ints_[row]);
    case ValueType::kDate:
      return Value::Date(static_cast<int32_t>(ints_[row]));
    case ValueType::kBool:
      return Value::Bool(ints_[row] != 0);
    case ValueType::kDouble:
      return Value::Dbl(doubles_[row]);
    case ValueType::kString:
      return Value::Str(strings_[row]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

void Column::GetValueRange(size_t start, size_t n,
                           std::vector<Value>* out) const {
  out->reserve(out->size() + n);
  switch (type_) {
    case ValueType::kInt64:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Int(ints_[r]));
      }
      return;
    case ValueType::kDate:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Date(static_cast<int32_t>(ints_[r])));
      }
      return;
    case ValueType::kBool:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Bool(ints_[r] != 0));
      }
      return;
    case ValueType::kDouble:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Dbl(doubles_[r]));
      }
      return;
    case ValueType::kString:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Str(strings_[r]));
      }
      return;
    case ValueType::kNull:
      for (size_t r = start; r < start + n; ++r) out->push_back(Value::Null());
  }
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      AppendInt(v.AsInt());
      return;
    case ValueType::kDate:
      AppendInt(v.AsDate());
      return;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case ValueType::kString:
      AppendString(v.AsString());
      return;
    case ValueType::kNull:
      assert(false && "append to NULL-typed column");
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.reserve(n);
      return;
    case ValueType::kString:
      strings_.reserve(n);
      return;
    default:
      ints_.reserve(n);
  }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status Table::AppendRow(const Row& row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %d", row.size(),
                  schema_.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      return Status::InvalidArgument(
          StrFormat("NULL value for column %s",
                    schema_.field(static_cast<int>(i)).name.c_str()));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  ++num_rows_;
  return Status::OK();
}

void Table::GetRow(size_t r, Row* out) const {
  out->clear();
  out->reserve(columns_.size());
  for (const Column& c : columns_) out->push_back(c.GetValue(r));
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

uint64_t Table::EstimatedBytes() const {
  return static_cast<uint64_t>(num_rows_) *
         static_cast<uint64_t>(schema_.RowWidth());
}

}  // namespace ecodb

#include "ecodb/storage/table.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "ecodb/util/strings.h"

namespace ecodb {

size_t Column::size() const {
  switch (type_) {
    case ValueType::kDouble:
      return doubles_.size();
    case ValueType::kString:
      return dict_active_ ? codes_.size() : strings_.size();
    default:
      return ints_.size();
  }
}

void Column::AppendString(std::string v) {
  if (!dict_active_) {
    strings_.push_back(std::move(v));
    return;
  }
  auto it = std::lower_bound(dict_strings_.begin(), dict_strings_.end(), v);
  if (it != dict_strings_.end() && *it == v) {
    codes_.push_back(static_cast<int32_t>(it - dict_strings_.begin()));
    return;
  }
  if (dict_strings_.size() >= kDictMaxEntries) {
    AbandonDict();
    strings_.push_back(std::move(v));
    return;
  }
  // Sorted insert: every existing code at or past the insertion point
  // shifts up by one. The remap is O(rows so far), but only runs once per
  // *distinct* value and the dictionary is capped, so total remap work is
  // bounded by kDictMaxEntries * rows-at-fill-time — negligible against
  // load cost for the low-cardinality columns that stay dict-encoded.
  const int32_t pos = static_cast<int32_t>(it - dict_strings_.begin());
  dict_hashes_.insert(dict_hashes_.begin() + pos,
                      std::hash<std::string>{}(v));
  dict_strings_.insert(it, std::move(v));
  for (int32_t& c : codes_) {
    if (c >= pos) ++c;
  }
  codes_.push_back(pos);
}

void Column::AbandonDict() {
  std::vector<std::string> plain;
  plain.reserve(codes_.size());
  for (int32_t c : codes_) {
    plain.push_back(dict_strings_[static_cast<size_t>(c)]);
  }
  strings_ = std::move(plain);
  dict_strings_.clear();
  dict_strings_.shrink_to_fit();
  dict_hashes_.clear();
  dict_hashes_.shrink_to_fit();
  codes_.clear();
  codes_.shrink_to_fit();
  dict_active_ = false;
}

int32_t Column::DictLowerBound(const std::string& s, bool* exact) const {
  auto it = std::lower_bound(dict_strings_.begin(), dict_strings_.end(), s);
  *exact = it != dict_strings_.end() && *it == s;
  return static_cast<int32_t>(it - dict_strings_.begin());
}

int32_t Column::FindDictCode(const std::string& s) const {
  bool exact = false;
  const int32_t code = DictLowerBound(s, &exact);
  return exact ? code : -1;
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int(ints_[row]);
    case ValueType::kDate:
      return Value::Date(static_cast<int32_t>(ints_[row]));
    case ValueType::kBool:
      return Value::Bool(ints_[row] != 0);
    case ValueType::kDouble:
      return Value::Dbl(doubles_[row]);
    case ValueType::kString:
      return Value::Str(GetString(row));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

void Column::GetValueRange(size_t start, size_t n,
                           std::vector<Value>* out) const {
  out->reserve(out->size() + n);
  switch (type_) {
    case ValueType::kInt64:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Int(ints_[r]));
      }
      return;
    case ValueType::kDate:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Date(static_cast<int32_t>(ints_[r])));
      }
      return;
    case ValueType::kBool:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Bool(ints_[r] != 0));
      }
      return;
    case ValueType::kDouble:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Dbl(doubles_[r]));
      }
      return;
    case ValueType::kString:
      for (size_t r = start; r < start + n; ++r) {
        out->push_back(Value::Str(GetString(r)));
      }
      return;
    case ValueType::kNull:
      for (size_t r = start; r < start + n; ++r) out->push_back(Value::Null());
  }
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kBool:
      AppendInt(v.AsInt());
      return;
    case ValueType::kDate:
      AppendInt(v.AsDate());
      return;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case ValueType::kString:
      AppendString(v.AsString());
      return;
    case ValueType::kNull:
      assert(false && "append to NULL-typed column");
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.reserve(n);
      return;
    case ValueType::kString:
      if (dict_active_) {
        codes_.reserve(n);
      } else {
        strings_.reserve(n);
      }
      return;
    default:
      ints_.reserve(n);
  }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Status Table::AppendRow(const Row& row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %d", row.size(),
                  schema_.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      return Status::InvalidArgument(
          StrFormat("NULL value for column %s",
                    schema_.field(static_cast<int>(i)).name.c_str()));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  ++num_rows_;
  return Status::OK();
}

void Table::GetRow(size_t r, Row* out) const {
  out->clear();
  out->reserve(columns_.size());
  for (const Column& c : columns_) out->push_back(c.GetValue(r));
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

uint64_t Table::EstimatedBytes() const {
  return static_cast<uint64_t>(num_rows_) *
         static_cast<uint64_t>(schema_.RowWidth());
}

int Table::EncodedRowWidth() const {
  int w = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Field& f = schema_.field(static_cast<int>(i));
    if (f.type == ValueType::kString && columns_[i].dict_encoded()) {
      w += static_cast<int>(sizeof(int32_t));
    } else {
      w += f.avg_width;
    }
  }
  return w;
}

}  // namespace ecodb

// Columnar in-memory table storage.
//
// Data lives in typed column vectors (compact; TPC-H lineitem at SF 1 fits
// in a couple hundred MB). The *disk-backed* engine profile still charges
// simulated page I/O through HeapFile + BufferPool; the columnar arrays
// are the contents those simulated pages hold.
//
// String columns are dictionary-encoded at append time: each column keeps
// a *sorted* vector of distinct strings plus a per-row int32 code vector,
// so predicates, group-by, join and sort keys can compare/hash 4-byte
// codes instead of payload bytes. The sorted order makes codes
// order-preserving (code_a < code_b <=> string_a < string_b), which lets
// range predicates and ORDER BY operate on codes directly. Columns whose
// cardinality exceeds kDictMaxEntries abandon the dictionary and fall
// back to plain per-row string storage (comments and other free-text
// payloads); `dict_encoded()` tells readers which representation is live.
// The dictionary is built eagerly during append — table storage is
// immutable while queries run (morsel workers read it concurrently), so
// there is no lazy finalization step.

#ifndef ECODB_STORAGE_TABLE_H_
#define ECODB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ecodb/storage/schema.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// One typed column. Only the vector matching the declared type is used.
class Column {
 public:
  /// Distinct-value ceiling for the per-column dictionary. Low-cardinality
  /// TPC-H columns (flags, modes, priorities, nation/region names, clerks)
  /// sit far under this; free-text comments blow past it within the first
  /// few thousand rows and fall back to plain storage.
  static constexpr size_t kDictMaxEntries = 1024;

  explicit Column(ValueType type)
      : type_(type), dict_active_(type == ValueType::kString) {}

  ValueType type() const { return type_; }
  size_t size() const;

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v);

  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }

  /// Raw array access for SIMD kernels over dense row runs.
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }
  const std::string& GetString(size_t row) const {
    return dict_active_
               ? dict_strings_[static_cast<size_t>(codes_[row])]
               : strings_[row];
  }

  /// --- Dictionary surface (string columns only) ---------------------
  /// True while the column stores codes + a sorted dictionary. Readers
  /// must check this before touching any other Dict* accessor; a column
  /// that abandoned its dictionary serves only GetString().
  bool dict_encoded() const { return dict_active_; }
  size_t dict_size() const { return dict_strings_.size(); }
  int32_t DictCode(size_t row) const { return codes_[row]; }
  const int32_t* codes_data() const { return codes_.data(); }
  const std::string& DictString(int32_t code) const {
    return dict_strings_[static_cast<size_t>(code)];
  }
  /// Cached std::hash<std::string> of the entry — bit-identical to
  /// hashing the decoded bytes, so batch key hashing over codes produces
  /// the same hash values as the row-mode byte path.
  size_t DictHash(int32_t code) const {
    return dict_hashes_[static_cast<size_t>(code)];
  }
  /// First code whose string compares >= `s` (may equal dict_size()).
  /// `*exact` is set when that entry equals `s`. Because the dictionary
  /// is sorted, one boundary search answers every comparison operator
  /// against a literal with a per-row int32 compare.
  int32_t DictLowerBound(const std::string& s, bool* exact) const;
  /// Code of the entry equal to `s`, or -1 when absent.
  int32_t FindDictCode(const std::string& s) const;

  /// Boxed access (slow path; scans use the typed getters).
  Value GetValue(size_t row) const;
  void AppendValue(const Value& v);

  /// Appends boxed values for rows [start, start + n) to `out`. The type
  /// dispatch is hoisted out of the row loop, so batch scans pay one
  /// switch per column-range instead of one per cell.
  void GetValueRange(size_t start, size_t n, std::vector<Value>* out) const;

  void Reserve(size_t n);

 private:
  /// Cardinality exceeded the cap: materialize plain per-row strings from
  /// the codes and drop the dictionary.
  void AbandonDict();

  ValueType type_;
  std::vector<int64_t> ints_;      // kInt64 / kDate / kBool
  std::vector<double> doubles_;    // kDouble
  std::vector<std::string> strings_;  // kString once the dict is abandoned

  bool dict_active_ = false;
  std::vector<std::string> dict_strings_;  ///< sorted distinct values
  std::vector<size_t> dict_hashes_;        ///< std::hash of each entry
  std::vector<int32_t> codes_;             ///< per-row index into the dict
};

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }

  /// Appends a row; the row must match the schema arity and types
  /// (kNull values are rejected — ecoDB tables are NOT NULL, as TPC-H is).
  Status AppendRow(const Row& row);

  /// Materializes row `r` into `out` (resized as needed).
  void GetRow(size_t r, Row* out) const;

  Value GetValue(size_t row, int col) const {
    return columns_[static_cast<size_t>(col)].GetValue(row);
  }

  void Reserve(size_t n);

  /// Estimated data bytes (for buffer-pool sizing decisions).
  uint64_t EstimatedBytes() const;

  /// Bytes per tuple as actually stored: dictionary-encoded string
  /// columns count their 4-byte code, everything else its schema
  /// avg_width. This is what a scan physically moves per row; SeqScan
  /// charges it (identically in row and batch mode) so dictionary
  /// compression shows up in the energy model, not just host time.
  int EncodedRowWidth() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_TABLE_H_

// Columnar in-memory table storage.
//
// Data lives in typed column vectors (compact; TPC-H lineitem at SF 1 fits
// in a couple hundred MB). The *disk-backed* engine profile still charges
// simulated page I/O through HeapFile + BufferPool; the columnar arrays
// are the contents those simulated pages hold.

#ifndef ECODB_STORAGE_TABLE_H_
#define ECODB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ecodb/storage/schema.h"
#include "ecodb/storage/value.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// One typed column. Only the vector matching the declared type is used.
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const;

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }

  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const { return strings_[row]; }

  /// Boxed access (slow path; scans use the typed getters).
  Value GetValue(size_t row) const;
  void AppendValue(const Value& v);

  /// Appends boxed values for rows [start, start + n) to `out`. The type
  /// dispatch is hoisted out of the row loop, so batch scans pay one
  /// switch per column-range instead of one per cell.
  void GetValueRange(size_t start, size_t n, std::vector<Value>* out) const;

  void Reserve(size_t n);

 private:
  ValueType type_;
  std::vector<int64_t> ints_;      // kInt64 / kDate / kBool
  std::vector<double> doubles_;    // kDouble
  std::vector<std::string> strings_;
};

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }

  /// Appends a row; the row must match the schema arity and types
  /// (kNull values are rejected — ecoDB tables are NOT NULL, as TPC-H is).
  Status AppendRow(const Row& row);

  /// Materializes row `r` into `out` (resized as needed).
  void GetRow(size_t r, Row* out) const;

  Value GetValue(size_t row, int col) const {
    return columns_[static_cast<size_t>(col)].GetValue(row);
  }

  void Reserve(size_t n);

  /// Estimated data bytes (for buffer-pool sizing decisions).
  uint64_t EstimatedBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_TABLE_H_

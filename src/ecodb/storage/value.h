// Value: the dynamically-typed scalar used at engine boundaries (rows,
// literals, query results).

#ifndef ECODB_STORAGE_VALUE_H_
#define ECODB_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ecodb {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< stored as int32 days since 1970-01-01
  kBool,
};

const char* ToString(ValueType t);

/// Owning scalar variant. Comparisons between kInt64/kDouble/kDate coerce
/// numerically; strings compare lexicographically; NULL compares less than
/// everything (only used for sort stability — SQL predicates on NULL
/// evaluate to false via IsTruthy).
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Dbl(double v);
  static Value Str(std::string v);
  static Value Date(int32_t days);
  static Value Bool(bool v);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const;       ///< valid for kInt64/kDate/kBool
  double AsDouble() const;     ///< valid for numeric types
  const std::string& AsString() const;
  int32_t AsDate() const;
  bool AsBool() const;

  /// True numeric-ish interpretation for WHERE results.
  bool IsTruthy() const;

  /// Three-way comparison: <0, 0, >0. Numeric types coerce; mismatched
  /// non-numeric types order by type tag (total order for sorting).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Hash consistent with operator== for join/group keys.
  size_t Hash() const;

  /// Hash of a double exactly as a Value holding it would hash (integral
  /// doubles hash through int64 so Int(2) and Dbl(2.0), which compare
  /// equal, hash equal). Exposed for typed batch key hashing, which reads
  /// raw column arrays without boxing a Value.
  static size_t HashDouble(double d) {
    // The int64 cast is defined only inside (-2^63, 2^63); NaN and
    // out-of-range magnitudes (which cannot equal an int64 anyway) go
    // straight to the double hash.
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>{}(as_int);
      }
    }
    return std::hash<double>{}(d);
  }

  std::string ToString() const;

 private:
  ValueType type_;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

/// A materialized tuple flowing between operators.
using Row = std::vector<Value>;

/// Hash of a NULL Value (Value::Hash keeps this in lockstep). Exposed so
/// typed batch kernels can hash null-masked lane cells without boxing.
inline constexpr size_t kNullValueHash = 0xEC0DB0ULL;

/// Non-owning view of one cell: the exact type tag plus unboxed storage
/// (int-backed types in `i`, doubles in `d`, strings by pointer). Typed
/// kernels — lane gathers, join-key equality, group-key hashing — flow
/// CellViews instead of Values so touching a cell never heap-allocates.
/// CompareCellViews / HashCellView MUST stay bit-for-bit in lockstep with
/// Value::Compare / Value::Hash: both execution modes and the boxed and
/// unboxed paths of one mode must agree on every comparison and hash.
struct CellView {
  ValueType type = ValueType::kNull;
  int64_t i = 0;            ///< kInt64 / kDate / kBool payload
  double d = 0.0;           ///< kDouble payload
  const std::string* s = nullptr;  ///< kString payload (never owned)

  bool is_null() const { return type == ValueType::kNull; }
  double AsDouble() const {
    return type == ValueType::kDouble ? d : static_cast<double>(i);
  }

  static CellView Null() { return CellView{}; }
  static CellView Int64(int64_t v, ValueType t = ValueType::kInt64) {
    CellView out;
    out.type = t;
    out.i = v;
    return out;
  }
  static CellView Double(double v) {
    CellView out;
    out.type = ValueType::kDouble;
    out.d = v;
    return out;
  }
  static CellView String(const std::string* v) {
    CellView out;
    out.type = ValueType::kString;
    out.s = v;
    return out;
  }
  static CellView Of(const Value& v);
};

/// Three-way comparison with exactly Value::Compare's semantics.
int CompareCellViews(const CellView& a, const CellView& b);

/// Hash with exactly Value::Hash's semantics.
size_t HashCellView(const CellView& v);

/// Boxes a view back into an owning Value, reproducing the exact type tag
/// (strings are copied).
Value BoxCellView(const CellView& v);

/// Key-hash combine step (Fibonacci/boost-style). All multi-column key
/// hashes — row keys, batch keys, group keys — MUST use this same seed and
/// combine so build/probe sides of hash operators agree across execution
/// modes.
inline constexpr size_t kRowKeyHashSeed = 0x9E3779B97F4A7C15ULL;

inline size_t HashCombineKey(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9E3779B9 + (h << 6) + (h >> 2));
}

/// Hash of a multi-column key.
size_t HashRowKey(const Row& row, const std::vector<int>& key_cols);

std::string RowToString(const Row& row);

}  // namespace ecodb

#endif  // ECODB_STORAGE_VALUE_H_

// Value: the dynamically-typed scalar used at engine boundaries (rows,
// literals, query results).

#ifndef ECODB_STORAGE_VALUE_H_
#define ECODB_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ecodb {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< stored as int32 days since 1970-01-01
  kBool,
};

const char* ToString(ValueType t);

/// Owning scalar variant. Comparisons between kInt64/kDouble/kDate coerce
/// numerically; strings compare lexicographically; NULL compares less than
/// everything (only used for sort stability — SQL predicates on NULL
/// evaluate to false via IsTruthy).
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Dbl(double v);
  static Value Str(std::string v);
  static Value Date(int32_t days);
  static Value Bool(bool v);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const;       ///< valid for kInt64/kDate/kBool
  double AsDouble() const;     ///< valid for numeric types
  const std::string& AsString() const;
  int32_t AsDate() const;
  bool AsBool() const;

  /// True numeric-ish interpretation for WHERE results.
  bool IsTruthy() const;

  /// Three-way comparison: <0, 0, >0. Numeric types coerce; mismatched
  /// non-numeric types order by type tag (total order for sorting).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Hash consistent with operator== for join/group keys.
  size_t Hash() const;

  /// Hash of a double exactly as a Value holding it would hash (integral
  /// doubles hash through int64 so Int(2) and Dbl(2.0), which compare
  /// equal, hash equal). Exposed for typed batch key hashing, which reads
  /// raw column arrays without boxing a Value.
  static size_t HashDouble(double d) {
    // The int64 cast is defined only inside (-2^63, 2^63); NaN and
    // out-of-range magnitudes (which cannot equal an int64 anyway) go
    // straight to the double hash.
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>{}(as_int);
      }
    }
    return std::hash<double>{}(d);
  }

  std::string ToString() const;

 private:
  ValueType type_;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

/// A materialized tuple flowing between operators.
using Row = std::vector<Value>;

/// Key-hash combine step (Fibonacci/boost-style). All multi-column key
/// hashes — row keys, batch keys, group keys — MUST use this same seed and
/// combine so build/probe sides of hash operators agree across execution
/// modes.
inline constexpr size_t kRowKeyHashSeed = 0x9E3779B97F4A7C15ULL;

inline size_t HashCombineKey(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9E3779B9 + (h << 6) + (h >> 2));
}

/// Hash of a multi-column key.
size_t HashRowKey(const Row& row, const std::vector<int>& key_cols);

std::string RowToString(const Row& row);

}  // namespace ecodb

#endif  // ECODB_STORAGE_VALUE_H_

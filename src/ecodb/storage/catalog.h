// Catalog: name -> (columnar table, heap-file layout).

#ifndef ECODB_STORAGE_CATALOG_H_
#define ECODB_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "ecodb/storage/heap_file.h"
#include "ecodb/storage/table.h"
#include "ecodb/util/result.h"
#include "ecodb/util/status.h"

namespace ecodb {

struct TableEntry {
  std::unique_ptr<Table> table;
  HeapFile file;
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails with kAlreadyExists on name clash.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Lookup (case-insensitive). nullptr if missing.
  Table* FindTable(const std::string& name) const;
  const TableEntry* FindEntry(const std::string& name) const;

  /// Refreshes heap-file layout after bulk loading `name`.
  Status FinalizeLoad(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Total estimated data volume across tables (bytes).
  uint64_t TotalBytes() const;

 private:
  std::vector<std::pair<std::string, std::unique_ptr<TableEntry>>> tables_;
  uint32_t next_file_id_ = 1;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_CATALOG_H_

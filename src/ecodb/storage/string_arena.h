// StringArena: address-stable owned string storage for columnar payloads.
//
// Typed string lanes and columnar pools carry `const std::string*` instead
// of copying bytes per cell. Those pointers are only safe while the bytes
// they reference stay alive and at the same address. The arena provides
// both properties: strings live in a deque (appending never moves existing
// elements), and the arena itself is shared via `std::shared_ptr` so any
// batch / result that references its bytes can *retain* the arena and keep
// the payload alive past the producer's own lifetime (a probe batch being
// replaced mid-call, an operator Close clearing its pool).
//
// Ownership contract (see docs/architecture.md "String ownership"): every
// string a lane points at is owned by (a) Table storage, which outlives
// the query, or (b) a StringArena retained — directly or transitively —
// by every RowBatch that references it.

#ifndef ECODB_STORAGE_STRING_ARENA_H_
#define ECODB_STORAGE_STRING_ARENA_H_

#include <deque>
#include <memory>
#include <string>
#include <utility>

namespace ecodb {

class StringArena {
 public:
  /// Copies `s` into the arena and returns its stable address.
  const std::string* Intern(const std::string& s) {
    strings_.push_back(s);
    return &strings_.back();
  }
  const std::string* Intern(std::string&& s) {
    strings_.push_back(std::move(s));
    return &strings_.back();
  }

  /// Indexed access for pool-style columns that append one entry per row
  /// (TypedColumn); entry `i` is the i-th interned string.
  const std::string& at(size_t i) const { return strings_[i]; }

  size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  /// Drops all strings. Only legal for an arena with a single owner (a
  /// shared arena may still be referenced by lanes elsewhere); callers
  /// check `use_count` on their handle before reusing.
  void Clear() { strings_.clear(); }

 private:
  std::deque<std::string> strings_;  ///< stable addresses across appends
};

using StringArenaPtr = std::shared_ptr<StringArena>;

}  // namespace ecodb

#endif  // ECODB_STORAGE_STRING_ARENA_H_

// StringArena: address-stable owned string storage for columnar payloads.
//
// Typed string lanes and columnar pools carry `const std::string*` instead
// of copying bytes per cell. Those pointers are only safe while the bytes
// they reference stay alive and at the same address. The arena provides
// both properties: strings live in a deque (appending never moves existing
// elements), and the arena itself is shared via `std::shared_ptr` so any
// batch / result that references its bytes can *retain* the arena and keep
// the payload alive past the producer's own lifetime (a probe batch being
// replaced mid-call, an operator Close clearing its pool).
//
// Ownership contract (see docs/architecture.md "String ownership"): every
// string a lane points at is owned by (a) Table storage, which outlives
// the query, or (b) a StringArena retained — directly or transitively —
// by every RowBatch that references it.

#ifndef ECODB_STORAGE_STRING_ARENA_H_
#define ECODB_STORAGE_STRING_ARENA_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "ecodb/util/memory_tracker.h"

namespace ecodb {

class StringArena {
 public:
  /// Default InternDedup distinct-entry ceiling: the dictionary exists
  /// for genuinely low-cardinality columns (flags, modes, nation names),
  /// not to index arbitrary payloads. Callers with different cardinality
  /// expectations pass their own cap to the constructor.
  static constexpr size_t kDedupMaxEntries = 64;

  explicit StringArena(size_t dedup_max_entries = kDedupMaxEntries)
      : dedup_max_entries_(dedup_max_entries) {}
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  ~StringArena() { DetachMemoryTracker(); }

  /// Copies `s` into the arena and returns its stable address.
  const std::string* Intern(const std::string& s) {
    strings_.push_back(s);
    TrackIntern(strings_.back().size());
    return &strings_.back();
  }
  const std::string* Intern(std::string&& s) {
    strings_.push_back(std::move(s));
    TrackIntern(strings_.back().size());
    return &strings_.back();
  }

  /// Deduplicating intern for low-cardinality columns: returns the
  /// address of an already-interned equal string when the dictionary
  /// knows one, so a column of n rows over k distinct values stores k
  /// copies, not n. The dictionary stops *growing* past the constructor's
  /// cap (this is for flags/modes/names, not for indexing arbitrary
  /// payloads) but keeps serving hits for the values it already indexed —
  /// a column with a few hot values plus a long tail still dedups the hot
  /// ones at one bounded hash probe per append.
  const std::string* InternDedup(const std::string& s) {
    auto it = dedup_.find(std::string_view(s));
    if (it != dedup_.end()) {
      ++dedup_hits_;
      return it->second;
    }
    ++dedup_misses_;
    if (dedup_.size() < dedup_max_entries_) {
      const std::string* p = Intern(s);
      dedup_.emplace(std::string_view(*p), p);  // keys view arena bytes
      return p;
    }
    return Intern(s);
  }

  /// Dedup effectiveness counters (diagnostics — these depend on how many
  /// appends took the copy path, which differs by exec mode, so they are
  /// surfaced in QueryExecStats but excluded from parity comparisons).
  uint64_t dedup_hits() const { return dedup_hits_; }
  uint64_t dedup_misses() const { return dedup_misses_; }

  size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  /// Drops all strings. Only legal for an arena with a single owner (a
  /// shared arena may still be referenced by lanes elsewhere); callers
  /// check `use_count` on their handle before reusing.
  void Clear() {
    if (tracker_ != nullptr) {
      tracker_->Release(tracked_bytes_);
      tracked_bytes_ = 0;
    }
    strings_.clear();
    dedup_.clear();
    dedup_hits_ = 0;
    dedup_misses_ = 0;
  }

  /// Optional logical-byte accounting: once attached, every interned
  /// payload charges its length to the tracker. The attaching TypedColumn
  /// owns the tracker's lifetime contract: an arena can be *retained* by
  /// emitted batches and result sets that outlive the query's ExecContext
  /// (and thus the tracker), so whoever relinquishes a tracked arena MUST
  /// call DetachMemoryTracker() first — after detach the arena never
  /// touches the tracker again.
  void set_memory_tracker(MemoryTracker* tracker) { tracker_ = tracker; }

  /// Releases everything this arena charged and forgets the tracker.
  void DetachMemoryTracker() {
    if (tracker_ != nullptr) {
      tracker_->Release(tracked_bytes_);
      tracker_ = nullptr;
    }
    tracked_bytes_ = 0;
  }

 private:
  void TrackIntern(size_t payload_bytes) {
    if (tracker_ != nullptr) {
      tracker_->Charge(payload_bytes);
      tracked_bytes_ += payload_bytes;
    }
  }

  std::deque<std::string> strings_;  ///< stable addresses across appends
  /// Content -> interned address; keys are views into `strings_` entries,
  /// which never move or die before Clear().
  std::unordered_map<std::string_view, const std::string*> dedup_;
  size_t dedup_max_entries_ = kDedupMaxEntries;
  uint64_t dedup_hits_ = 0;
  uint64_t dedup_misses_ = 0;
  MemoryTracker* tracker_ = nullptr;
  uint64_t tracked_bytes_ = 0;
};

using StringArenaPtr = std::shared_ptr<StringArena>;

}  // namespace ecodb

#endif  // ECODB_STORAGE_STRING_ARENA_H_

#include "ecodb/storage/buffer_pool.h"

#include "ecodb/util/backoff.h"

namespace ecodb {

BufferPool::BufferPool(Machine* machine, uint64_t capacity_pages)
    : machine_(machine), capacity_pages_(capacity_pages) {}

Status BufferPool::DiskReadWithFaults(uint64_t bytes, uint64_t n_requests,
                                      bool random) {
  if (fault_injector_ == nullptr) {
    return machine_->DiskRead(bytes, n_requests, random);
  }
  const FaultInjectorConfig& cfg = fault_injector_->config();
  BackoffPolicy policy;
  policy.max_retries = cfg.max_retries;
  policy.initial_delay_seconds = cfg.initial_backoff_seconds;
  policy.multiplier = cfg.backoff_multiplier;
  // No jitter: the read-retry delay schedule stays a pure function of the
  // injector config, bit-identical to the pre-extraction loop.
  Backoff backoff(policy);
  for (;;) {
    const FaultInjector::Outcome outcome = fault_injector_->NextReadOutcome();
    if (outcome == FaultInjector::Outcome::kPersistent) {
      ++stats_.persistent_faults;
      return Status::HardwareFault("persistent disk fault (injected)");
    }
    // The read runs to completion before the fault is detected, so a
    // faulted attempt costs exactly as much time and energy as a good
    // one — and the machine's own injected-fault path can still fire.
    ECODB_RETURN_NOT_OK(machine_->DiskRead(bytes, n_requests, random));
    if (outcome == FaultInjector::Outcome::kOk) return Status::OK();
    ++stats_.transient_faults;
    // Energy-accounted backoff: the machine idles (system on, CPU in its
    // idle state) for the wait, then the read is re-issued.
    if (!backoff.StepOrExhaust([this](double s) { machine_->Idle(s); })) {
      return Status::HardwareFault(
          "transient disk faults exhausted retry budget");
    }
    ++stats_.retries;
  }
}

bool BufferPool::Contains(PageId pid) const {
  return frames_.find(pid) != frames_.end();
}

void BufferPool::Touch(PageId pid) {
  auto it = frames_.find(pid);
  lru_.erase(it->second);
  lru_.push_front(pid);
  it->second = lru_.begin();
}

void BufferPool::Admit(PageId pid) {
  if (capacity_pages_ != 0 && frames_.size() >= capacity_pages_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(pid);
  frames_[pid] = lru_.begin();
}

Status BufferPool::FetchPage(PageId pid, AccessHint hint) {
  if (Contains(pid)) {
    ++stats_.hits;
    Touch(pid);
    return Status::OK();
  }
  ++stats_.misses;
  bool random = hint == AccessHint::kRandom;
  if (random) {
    ++stats_.random_misses;
  } else {
    ++stats_.sequential_misses;
  }
  ECODB_RETURN_NOT_OK(DiskReadWithFaults(kPageSizeBytes, 1, random));
  Admit(pid);
  return Status::OK();
}

Status BufferPool::FetchRange(uint32_t file_id, uint64_t first, uint64_t count,
                              AccessHint hint) {
  uint64_t missing = 0;
  for (uint64_t i = 0; i < count; ++i) {
    PageId pid{file_id, first + i};
    if (Contains(pid)) {
      ++stats_.hits;
      Touch(pid);
    } else {
      ++missing;
    }
  }
  if (missing == 0) return Status::OK();
  stats_.misses += missing;
  bool random = hint == AccessHint::kRandom;
  if (random) {
    stats_.random_misses += missing;
    ECODB_RETURN_NOT_OK(
        DiskReadWithFaults(missing * kPageSizeBytes, missing, true));
  } else {
    stats_.sequential_misses += missing;
    // Readahead: one positioning for the whole run.
    ECODB_RETURN_NOT_OK(
        DiskReadWithFaults(missing * kPageSizeBytes, missing, false));
  }
  for (uint64_t i = 0; i < count; ++i) {
    PageId pid{file_id, first + i};
    if (!Contains(pid)) Admit(pid);
  }
  return Status::OK();
}

void BufferPool::EvictAll() {
  lru_.clear();
  frames_.clear();
}

}  // namespace ecodb

#include "ecodb/storage/buffer_pool.h"

namespace ecodb {

BufferPool::BufferPool(Machine* machine, uint64_t capacity_pages)
    : machine_(machine), capacity_pages_(capacity_pages) {}

bool BufferPool::Contains(PageId pid) const {
  return frames_.find(pid) != frames_.end();
}

void BufferPool::Touch(PageId pid) {
  auto it = frames_.find(pid);
  lru_.erase(it->second);
  lru_.push_front(pid);
  it->second = lru_.begin();
}

void BufferPool::Admit(PageId pid) {
  if (capacity_pages_ != 0 && frames_.size() >= capacity_pages_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(pid);
  frames_[pid] = lru_.begin();
}

Status BufferPool::FetchPage(PageId pid, AccessHint hint) {
  if (Contains(pid)) {
    ++stats_.hits;
    Touch(pid);
    return Status::OK();
  }
  ++stats_.misses;
  bool random = hint == AccessHint::kRandom;
  if (random) {
    ++stats_.random_misses;
  } else {
    ++stats_.sequential_misses;
  }
  ECODB_RETURN_NOT_OK(machine_->DiskRead(kPageSizeBytes, 1, random));
  Admit(pid);
  return Status::OK();
}

Status BufferPool::FetchRange(uint32_t file_id, uint64_t first, uint64_t count,
                              AccessHint hint) {
  uint64_t missing = 0;
  for (uint64_t i = 0; i < count; ++i) {
    PageId pid{file_id, first + i};
    if (Contains(pid)) {
      ++stats_.hits;
      Touch(pid);
    } else {
      ++missing;
    }
  }
  if (missing == 0) return Status::OK();
  stats_.misses += missing;
  bool random = hint == AccessHint::kRandom;
  if (random) {
    stats_.random_misses += missing;
    ECODB_RETURN_NOT_OK(
        machine_->DiskRead(missing * kPageSizeBytes, missing, true));
  } else {
    stats_.sequential_misses += missing;
    // Readahead: one positioning for the whole run.
    ECODB_RETURN_NOT_OK(
        machine_->DiskRead(missing * kPageSizeBytes, missing, false));
  }
  for (uint64_t i = 0; i < count; ++i) {
    PageId pid{file_id, first + i};
    if (!Contains(pid)) Admit(pid);
  }
  return Status::OK();
}

void BufferPool::EvictAll() {
  lru_.clear();
  frames_.clear();
}

}  // namespace ecodb

// Buffer pool: LRU page cache over the simulated disk.
//
// A page hit costs nothing at this layer (the CPU-side cost of touching
// the data is charged by the operators); a miss charges a simulated disk
// read to the Machine. EvictAll() models the paper's cold-start runs
// ("immediately following a system reboot", Section 3.5).

#ifndef ECODB_STORAGE_BUFFER_POOL_H_
#define ECODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ecodb/sim/fault_injection.h"
#include "ecodb/sim/machine.h"
#include "ecodb/storage/heap_file.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// Hint describing the physical access pattern of a fetch, which decides
/// how a miss is charged (sequential transfer vs seek + short transfer).
enum class AccessHint {
  kSequential,
  kRandom,
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t sequential_misses = 0;
  uint64_t random_misses = 0;
  uint64_t evictions = 0;
  /// Fault-injection outcomes (zero when no injector is attached).
  uint64_t transient_faults = 0;   ///< individual read attempts that faulted
  uint64_t retries = 0;            ///< re-issued reads after a transient fault
  uint64_t persistent_faults = 0;  ///< reads escalated to kHardwareFault

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class BufferPool {
 public:
  /// capacity_pages == 0 means "infinite" (memory-engine profile: no
  /// disk-backed pages at all still routes here for uniformity, but the
  /// caller normally skips I/O charging entirely in that case).
  BufferPool(Machine* machine, uint64_t capacity_pages);

  /// Ensures the page is resident; charges a disk read on miss.
  Status FetchPage(PageId pid, AccessHint hint);

  /// Fetches a run of consecutive pages [first, first+count), charging one
  /// batched sequential read for the misses (readahead).
  Status FetchRange(uint32_t file_id, uint64_t first, uint64_t count,
                    AccessHint hint);

  /// Drops everything (cold start / reboot).
  void EvictAll();

  /// True if the page is currently resident (test support).
  bool Contains(PageId pid) const;

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const { return frames_.size(); }

  /// Attaches a deterministic fault schedule (not owned; null disables —
  /// the read path is then byte-for-byte the old one). See
  /// FaultInjectorConfig for the retry/backoff policy.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() { return fault_injector_; }

 private:
  /// Inserts pid as most-recently-used, evicting LRU if full.
  void Admit(PageId pid);
  void Touch(PageId pid);

  /// DiskRead with the injector's fault schedule applied: a transient
  /// fault charges the failed read's full time + energy, idles the
  /// machine through an exponential backoff (robustness costs joules),
  /// and re-reads; attempts past max_retries — and any persistent
  /// fault — escalate to kHardwareFault.
  Status DiskReadWithFaults(uint64_t bytes, uint64_t n_requests, bool random);

  Machine* machine_;
  uint64_t capacity_pages_;
  FaultInjector* fault_injector_ = nullptr;  ///< not owned; null = off
  // LRU list: front = most recent. Map points into the list.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> frames_;
  BufferPoolStats stats_;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_BUFFER_POOL_H_

// Buffer pool: LRU page cache over the simulated disk.
//
// A page hit costs nothing at this layer (the CPU-side cost of touching
// the data is charged by the operators); a miss charges a simulated disk
// read to the Machine. EvictAll() models the paper's cold-start runs
// ("immediately following a system reboot", Section 3.5).

#ifndef ECODB_STORAGE_BUFFER_POOL_H_
#define ECODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ecodb/sim/machine.h"
#include "ecodb/storage/heap_file.h"
#include "ecodb/util/status.h"

namespace ecodb {

/// Hint describing the physical access pattern of a fetch, which decides
/// how a miss is charged (sequential transfer vs seek + short transfer).
enum class AccessHint {
  kSequential,
  kRandom,
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t sequential_misses = 0;
  uint64_t random_misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class BufferPool {
 public:
  /// capacity_pages == 0 means "infinite" (memory-engine profile: no
  /// disk-backed pages at all still routes here for uniformity, but the
  /// caller normally skips I/O charging entirely in that case).
  BufferPool(Machine* machine, uint64_t capacity_pages);

  /// Ensures the page is resident; charges a disk read on miss.
  Status FetchPage(PageId pid, AccessHint hint);

  /// Fetches a run of consecutive pages [first, first+count), charging one
  /// batched sequential read for the misses (readahead).
  Status FetchRange(uint32_t file_id, uint64_t first, uint64_t count,
                    AccessHint hint);

  /// Drops everything (cold start / reboot).
  void EvictAll();

  /// True if the page is currently resident (test support).
  bool Contains(PageId pid) const;

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const { return frames_.size(); }

 private:
  /// Inserts pid as most-recently-used, evicting LRU if full.
  void Admit(PageId pid);
  void Touch(PageId pid);

  Machine* machine_;
  uint64_t capacity_pages_;
  // LRU list: front = most recent. Map points into the list.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> frames_;
  BufferPoolStats stats_;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_BUFFER_POOL_H_

// Simulated on-disk layout: each table maps to a heap file of fixed-size
// pages. Pages are accounting entities (what the buffer pool caches and
// what disk reads are charged against); their contents are the columnar
// Table data.

#ifndef ECODB_STORAGE_HEAP_FILE_H_
#define ECODB_STORAGE_HEAP_FILE_H_

#include <cstddef>
#include <cstdint>

namespace ecodb {

inline constexpr uint32_t kPageSizeBytes = 8192;

struct PageId {
  uint32_t file_id = 0;
  uint64_t page_no = 0;

  bool operator==(const PageId& o) const {
    return file_id == o.file_id && page_no == o.page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return (static_cast<size_t>(p.file_id) << 48) ^ p.page_no;
  }
};

/// Page-layout metadata for one table.
class HeapFile {
 public:
  HeapFile() = default;
  /// row_width: estimated bytes per tuple (Schema::RowWidth()).
  HeapFile(uint32_t file_id, uint64_t num_rows, int row_width);

  uint32_t file_id() const { return file_id_; }
  uint64_t num_pages() const { return num_pages_; }
  uint64_t rows_per_page() const { return rows_per_page_; }
  uint64_t num_rows() const { return num_rows_; }

  /// Page holding row `r`.
  PageId PageOfRow(uint64_t r) const {
    return PageId{file_id_, rows_per_page_ ? r / rows_per_page_ : 0};
  }

  /// Number of rows from `r` (inclusive) to the end of its page — the
  /// largest contiguous run a batch scan can take without crossing a page
  /// boundary (and thus without another I/O accounting call).
  uint64_t RowsLeftInPage(uint64_t r) const {
    if (rows_per_page_ == 0) return 1;
    return rows_per_page_ - (r % rows_per_page_);
  }

  /// Recomputes layout after rows were appended.
  void SetNumRows(uint64_t num_rows);

 private:
  uint32_t file_id_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t rows_per_page_ = 1;
  uint64_t num_pages_ = 0;
};

}  // namespace ecodb

#endif  // ECODB_STORAGE_HEAP_FILE_H_

#include "ecodb/storage/schema.h"

#include "ecodb/util/strings.h"

namespace ecodb {

namespace {

int DefaultWidth(ValueType t) {
  switch (t) {
    case ValueType::kString:
      return 16;
    case ValueType::kDate:
      return 4;
    case ValueType::kBool:
      return 1;
    default:
      return 8;
  }
}

}  // namespace

Field::Field(std::string n, ValueType t)
    : name(std::move(n)), type(t), avg_width(DefaultWidth(t)) {}

Field::Field(std::string n, ValueType t, int width)
    : name(std::move(n)), type(t), avg_width(width) {}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

int Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int Schema::RowWidth() const {
  int w = 0;
  for (const Field& f : fields_) w += f.avg_width;
  return w;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields = a.fields();
  fields.insert(fields.end(), b.fields().begin(), b.fields().end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += ecodb::ToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace ecodb
